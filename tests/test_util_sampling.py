"""Unit and property tests for the workload samplers."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.sampling import (
    DIURNAL_PROFILE,
    bounded_lognormal,
    bounded_pareto,
    diurnal_weight,
    weighted_choice,
)


def test_bounded_lognormal_respects_bounds():
    rng = random.Random(1)
    for _ in range(500):
        v = bounded_lognormal(rng, median=4.0, sigma=1.2, low=0.1, high=100.0)
        assert 0.1 <= v <= 100.0


def test_bounded_lognormal_median_roughly_preserved():
    rng = random.Random(2)
    samples = sorted(
        bounded_lognormal(rng, median=4.0, sigma=1.0, low=0.01, high=1e6)
        for _ in range(4000)
    )
    median = samples[len(samples) // 2]
    assert 3.2 < median < 4.8


def test_bounded_lognormal_invalid_bounds():
    with pytest.raises(ValueError):
        bounded_lognormal(random.Random(0), 4.0, 1.0, low=10.0, high=1.0)


def test_bounded_pareto_bounds_and_tail():
    rng = random.Random(3)
    samples = [bounded_pareto(rng, alpha=1.1, scale=1.0, high=10_000.0) for _ in range(5000)]
    assert all(1.0 <= s <= 10_000.0 for s in samples)
    # Heavy tail: some samples far above the median.
    samples.sort()
    assert samples[-1] > 50 * samples[len(samples) // 2]


def test_bounded_pareto_validation():
    rng = random.Random(0)
    with pytest.raises(ValueError):
        bounded_pareto(rng, alpha=0.0, scale=1.0, high=10.0)
    with pytest.raises(ValueError):
        bounded_pareto(rng, alpha=1.0, scale=5.0, high=5.0)


@given(st.floats(min_value=-100.0, max_value=100.0, allow_nan=False))
def test_diurnal_weight_in_profile_range(hour):
    w = diurnal_weight(hour)
    assert min(DIURNAL_PROFILE) <= w <= max(DIURNAL_PROFILE)


def test_diurnal_profile_shape_matches_paper():
    # Early-hours slump, morning peak, rise towards midnight (Fig. 2b).
    assert diurnal_weight(4) == min(DIURNAL_PROFILE)
    assert diurnal_weight(9) > diurnal_weight(13)
    assert diurnal_weight(22) > diurnal_weight(16)


def test_diurnal_weight_interpolates():
    w = diurnal_weight(4.5)
    assert min(diurnal_weight(4), diurnal_weight(5)) <= w <= max(
        diurnal_weight(4), diurnal_weight(5)
    )


def test_diurnal_weight_wraps():
    assert diurnal_weight(23.5) == pytest.approx(
        (DIURNAL_PROFILE[23] + DIURNAL_PROFILE[0]) / 2
    )


def test_weighted_choice_respects_zero_weight():
    rng = random.Random(4)
    for _ in range(200):
        assert weighted_choice(rng, ["a", "b"], [0.0, 1.0]) == "b"


def test_weighted_choice_roughly_proportional():
    rng = random.Random(5)
    picks = [weighted_choice(rng, ["x", "y"], [3.0, 1.0]) for _ in range(4000)]
    share = picks.count("x") / len(picks)
    assert 0.70 < share < 0.80


def test_weighted_choice_validation():
    rng = random.Random(0)
    with pytest.raises(ValueError):
        weighted_choice(rng, ["a"], [1.0, 2.0])
    with pytest.raises(ValueError):
        weighted_choice(rng, [], [])
    with pytest.raises(ValueError):
        weighted_choice(rng, ["a"], [0.0])
