"""Regression: run_until must not execute past-deadline events when a
cancelled event with an earlier timestamp sits at the heap head."""

from repro.netsim.events import EventLoop


def test_cancelled_head_does_not_leak_later_events():
    loop = EventLoop()
    fired = []
    early = loop.schedule(1.0, lambda: fired.append("early"))
    loop.schedule(5.0, lambda: fired.append("late"))
    early.cancel()
    loop.run_until(2.0)
    assert fired == []          # the 5.0 event must NOT have fired
    assert loop.now == 2.0
    loop.run()
    assert fired == ["late"]


def test_many_cancelled_heads():
    loop = EventLoop()
    fired = []
    cancelled = [loop.schedule(0.5 + i * 0.01, lambda: fired.append("x"))
                 for i in range(20)]
    for event in cancelled:
        event.cancel()
    loop.schedule(3.0, lambda: fired.append("keep"))
    loop.run_until(1.0)
    assert fired == []
    loop.run_until(3.5)
    assert fired == ["keep"]
