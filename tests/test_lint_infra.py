"""Linter infrastructure: pragmas, baseline lifecycle, fingerprints,
and the shared file discovery."""

import json
import os
import textwrap

from repro.lint import (
    apply_baseline,
    discover_files,
    lint_sources,
    load_baseline,
    run_lint,
    write_baseline,
)
from repro.lint.baseline import BaselineEntry


def _violation_source():
    return textwrap.dedent("""
        import time

        def arrival():
            return time.time()
    """)


# ---------------------------------------------------------------- pragmas

class TestPragmas:
    def test_pragma_suppresses_named_rule(self):
        source = textwrap.dedent("""
            import time

            def arrival():
                return time.time()  # lint: disable=D101
        """)
        findings = lint_sources(
            {"src/repro/netsim/snippet.py": source}, only_rules=["D101"]
        )
        assert findings == []

    def test_pragma_for_other_rule_does_not_suppress(self):
        source = textwrap.dedent("""
            import time

            def arrival():
                return time.time()  # lint: disable=D102
        """)
        findings = lint_sources(
            {"src/repro/netsim/snippet.py": source}, only_rules=["D101"]
        )
        assert [f.rule for f in findings] == ["D101"]

    def test_disable_all_and_multi_rule_lists(self):
        source = textwrap.dedent("""
            import time, random

            def draw():
                return time.time() and random.random()  # lint: disable=D101,D102

            def both():
                return time.time() and random.random()  # lint: disable=all
        """)
        findings = lint_sources({"src/repro/netsim/snippet.py": source})
        assert findings == []

    def test_pragma_only_covers_its_own_line(self):
        source = textwrap.dedent("""
            import time  # lint: disable=D101

            def arrival():
                return time.time()
        """)
        findings = lint_sources(
            {"src/repro/netsim/snippet.py": source}, only_rules=["D101"]
        )
        assert [f.rule for f in findings] == ["D101"]


# ---------------------------------------------------------------- fingerprints

class TestFingerprints:
    def test_stable_across_line_shifts(self):
        base = _violation_source()
        shifted = "# a new leading comment\n" + base
        f1 = lint_sources({"src/repro/netsim/s.py": base}, only_rules=["D101"])
        f2 = lint_sources({"src/repro/netsim/s.py": shifted}, only_rules=["D101"])
        assert f1[0].fingerprint == f2[0].fingerprint
        assert f1[0].line != f2[0].line

    def test_identical_lines_get_distinct_fingerprints(self):
        source = textwrap.dedent("""
            import time

            def a():
                return time.time()

            def b():
                return time.time()
        """)
        findings = lint_sources(
            {"src/repro/netsim/s.py": source}, only_rules=["D101"]
        )
        assert len(findings) == 2
        assert findings[0].fingerprint != findings[1].fingerprint


# ---------------------------------------------------------------- baseline

class TestBaseline:
    def test_add_then_expire(self, tmp_path):
        findings = lint_sources(
            {"src/repro/netsim/s.py": _violation_source()}, only_rules=["D101"]
        )
        baseline_path = str(tmp_path / "lint-baseline.json")
        assert write_baseline(baseline_path, findings) == 1
        entries = load_baseline(baseline_path)

        # Same findings again: fully absorbed, nothing stale.
        new, baselined, stale = apply_baseline(findings, entries)
        assert new == [] and len(baselined) == 1 and stale == []

        # Violation fixed: the entry goes stale...
        new, baselined, stale = apply_baseline([], entries)
        assert new == [] and baselined == [] and len(stale) == 1

        # ...and a rewrite drops it.
        assert write_baseline(baseline_path, []) == 0
        assert load_baseline(baseline_path) == []

    def test_baseline_does_not_hide_new_findings(self):
        old = lint_sources(
            {"src/repro/netsim/s.py": _violation_source()}, only_rules=["D101"]
        )
        entries = [BaselineEntry(f.rule, f.path, f.fingerprint) for f in old]
        two = textwrap.dedent("""
            import time

            def arrival():
                return time.time()

            def departure():
                return time.perf_counter()
        """)
        findings = lint_sources(
            {"src/repro/netsim/s.py": two}, only_rules=["D101"]
        )
        new, baselined, stale = apply_baseline(findings, entries)
        assert len(baselined) == 1
        assert len(new) == 1
        assert "perf_counter" in new[0].message

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(str(tmp_path / "nope.json")) == []


# ---------------------------------------------------------------- discovery

class TestDiscovery:
    def _make_tree(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
        pkg = tmp_path / "src" / "repro" / "netsim"
        pkg.mkdir(parents=True)
        (pkg / "mod.py").write_text("X = 1\n")
        cache = pkg / "__pycache__"
        cache.mkdir()
        (cache / "mod.cpython-312.py").write_text("X = 1\n")
        tests = tmp_path / "tests"
        tests.mkdir()
        (tests / "test_mod.py").write_text("def test(): pass\n")
        fixtures = tests / "fixtures"
        fixtures.mkdir()
        (fixtures / "bad_snippet.py").write_text("import time\ntime.time()\n")
        (tests / "generated_pb2.py").write_text(
            "# @generated by protoc\nX = 1\n"
        )
        (tests / "notes.txt").write_text("not python\n")
        return tmp_path

    def test_skips_pycache_fixtures_and_generated(self, tmp_path):
        root = self._make_tree(tmp_path)
        files = discover_files(str(root))
        assert files == ["src/repro/netsim/mod.py", "tests/test_mod.py"]

    def test_cli_and_pytest_agree_on_discovery(self, tmp_path):
        """The meta-test and ``python -m repro.lint`` share one discovery
        function, so their file sets are identical by construction —
        this pins the contract."""
        root = self._make_tree(tmp_path)
        result = run_lint(root=str(root))
        assert result.files == discover_files(str(root))

    def test_single_file_root(self, tmp_path):
        root = self._make_tree(tmp_path)
        files = discover_files(str(root), ["src/repro/netsim/mod.py"])
        assert files == ["src/repro/netsim/mod.py"]


# ---------------------------------------------------------------- meta

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


class TestShippedTree:
    def test_shipped_tree_is_lint_clean(self):
        """The tier-1 CI gate: src/repro + tests, against the checked-in
        baseline, must produce zero new findings."""
        result = run_lint(root=REPO_ROOT)
        formatted = "\n".join(
            f"{f.location()}: {f.rule} {f.message}" for f in result.findings
        )
        assert result.ok, f"new lint findings:\n{formatted}"
        assert len(result.files) > 100  # sanity: the whole tree was seen

    def test_checked_in_baseline_has_no_stale_entries(self):
        result = run_lint(root=REPO_ROOT)
        assert result.stale_baseline == []

    def test_baseline_file_is_valid_json_with_version(self):
        path = os.path.join(REPO_ROOT, "lint-baseline.json")
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["version"] == 1
        assert isinstance(payload["findings"], list)


# ------------------------------------------------- fingerprint normalization

class TestFingerprintNormalization:
    def test_stable_across_respacing(self):
        """Pure formatting churn (internal whitespace) must not invalidate
        baseline entries, same as pure line shifts."""
        base = _violation_source()
        respaced = base.replace("return time.time()", "return    time.time()")
        f1 = lint_sources({"src/repro/netsim/s.py": base}, only_rules=["D101"])
        f2 = lint_sources({"src/repro/netsim/s.py": respaced}, only_rules=["D101"])
        assert f1[0].line_text != f2[0].line_text
        assert f1[0].normalized_text == f2[0].normalized_text
        assert f1[0].fingerprint == f2[0].fingerprint

    def test_stable_across_shift_plus_reindent(self):
        """The shifted fixture: new code above AND a reindent (wrapping in
        an if) — line number and raw text both change, identity survives."""
        base = _violation_source()
        shifted = textwrap.dedent("""
            import time

            FLAG = True

            def arrival():
                if FLAG:
                        return time.time()
        """)
        f1 = lint_sources({"src/repro/netsim/s.py": base}, only_rules=["D101"])
        f2 = lint_sources({"src/repro/netsim/s.py": shifted}, only_rules=["D101"])
        assert f1[0].line != f2[0].line
        assert f1[0].fingerprint == f2[0].fingerprint

    def test_respacing_keeps_baseline_entry_matching(self):
        base = _violation_source()
        findings = lint_sources({"src/repro/netsim/s.py": base}, only_rules=["D101"])
        entries = [BaselineEntry(rule=f.rule, path=f.path, fingerprint=f.fingerprint)
                   for f in findings]
        respaced = base.replace("return time.time()", "return   time.time()")
        after = lint_sources({"src/repro/netsim/s.py": respaced}, only_rules=["D101"])
        new, matched, stale = apply_baseline(after, entries)
        assert new == []
        assert len(matched) == 1
        assert stale == []
