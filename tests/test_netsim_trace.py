"""Tests for the trace-capture utilities."""

import pytest

from repro.netsim.connection import Connection, Message
from repro.netsim.events import EventLoop
from repro.netsim.topology import Network
from repro.netsim.trace import TraceCapture
from repro.util.units import MBPS


@pytest.fixture()
def captured():
    loop = EventLoop()
    net = Network(loop)
    a, b = net.host("a"), net.host("b")
    net.duplex(a, b, rate_bps=10 * MBPS, delay_s=0.01)
    capture = TraceCapture()
    capture.tap_link(net.link_between(a, b), "down")
    capture.tap_link(net.link_between(b, a), "up")
    fwd, rev = net.duplex_paths("a", "b")
    conn = Connection(loop, fwd, rev, on_message=lambda m, t: None)
    for i in range(5):
        conn.send(Message(payload=i, nbytes=3000,
                          annotations={"protocol": "test"}))
    loop.run()
    return capture, conn


def test_records_both_directions(captured):
    capture, _ = captured
    directions = {r.direction for r in capture.records}
    assert directions == {"down", "up"}


def test_data_vs_ack_split(captured):
    capture, _ = captured
    data = capture.data_records()
    acks = [r for r in capture.records if r.is_ack]
    assert data and acks
    assert all(r.payload_bytes > 0 for r in data)
    assert all(r.payload_bytes == 0 for r in acks)


def test_flow_grouping(captured):
    capture, conn = captured
    flows = capture.flows()
    assert conn.flow_id in flows


def test_total_bytes_accounting(captured):
    capture, _ = captured
    down_all = capture.total_bytes(direction="down")
    down_data = capture.total_bytes(direction="down", include_acks=False)
    assert down_all >= down_data > 5 * 3000


def test_byterate_window(captured):
    capture, _ = captured
    rate = capture.byterate_bps(0.0, 1.0, direction="down")
    assert rate > 0
    with pytest.raises(ValueError):
        capture.byterate_bps(1.0, 1.0)


def test_filter_and_annotations(captured):
    capture, _ = captured
    tagged = capture.filter(lambda r: r.annotation("protocol") == "test")
    assert tagged
    assert tagged[0].annotation("missing", "default") == "default"


def test_pause_resume():
    loop = EventLoop()
    net = Network(loop)
    a, b = net.host("a"), net.host("b")
    net.duplex(a, b, rate_bps=10 * MBPS, delay_s=0.0)
    capture = TraceCapture()
    capture.tap_link(net.link_between(a, b), "down")
    fwd, rev = net.duplex_paths("a", "b")
    conn = Connection(loop, fwd, rev)
    capture.pause()
    conn.send(Message(payload=None, nbytes=100))
    loop.run()
    assert len(capture) == 0
    capture.resume()
    conn.send(Message(payload=None, nbytes=100))
    loop.run()
    assert len(capture) > 0


def test_stop_detaches():
    loop = EventLoop()
    net = Network(loop)
    a, b = net.host("a"), net.host("b")
    net.duplex(a, b, rate_bps=10 * MBPS, delay_s=0.0)
    capture = TraceCapture()
    capture.tap_link(net.link_between(a, b), "down")
    capture.stop()
    fwd, rev = net.duplex_paths("a", "b")
    conn = Connection(loop, fwd, rev)
    conn.send(Message(payload=None, nbytes=100))
    loop.run()
    assert len(capture) == 0
