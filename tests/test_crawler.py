"""Integration tests for the deep and targeted crawls."""

import pytest

from repro.crawler.analysis import analyze_tracked
from repro.crawler.client import CrawlHarness
from repro.crawler.deep import DeepCrawler
from repro.crawler.targeted import TargetedCrawl, TrackedBroadcast
from repro.service.api import RateLimiter


@pytest.fixture(scope="module")
def deep_result():
    harness = CrawlHarness(seed=42, mean_concurrent=700, identities=1)
    crawler = DeepCrawler(harness.clients[0], max_depth=4)
    crawler.start()
    harness.run_until(1200.0)
    return harness, crawler.result


class TestDeepCrawl:
    def test_discovers_substantial_fraction(self, deep_result):
        harness, result = deep_result
        live = harness.world.live_count()
        visible = sum(
            1
            for b in harness.world.live_broadcasts()
            if not b.is_private and b.description_has_location
        )
        assert len(result.discovered) > 0.5 * visible

    def test_queries_many_areas(self, deep_result):
        _, result = deep_result
        assert len(result.areas) > 40

    def test_discovery_curve_monotone(self, deep_result):
        _, result = deep_result
        curve = result.discovery_curve()
        counts = [c for _, c in curve]
        assert counts == sorted(counts)
        assert curve[-1][1] == len(result.discovered)

    def test_half_the_areas_hold_most_broadcasts(self, deep_result):
        # Fig. 1(b): ~half of the areas contain at least 80% of broadcasts.
        _, result = deep_result
        curve = result.relative_curve()
        at_half = max(pct for areas_pct, pct in curve if areas_pct <= 50.0)
        assert at_half >= 70.0

    def test_crawl_takes_minutes_due_to_pacing(self, deep_result):
        # At paper scale (2500+ concurrent) a deep crawl exceeds 10 min;
        # this fixture runs a ~4x smaller world, so expect a scaled floor.
        _, result = deep_result
        assert result.duration_s > 30.0
        assert result.duration_s >= 0.8 * len(result.areas) * 0.85

    def test_top_areas_are_leaves(self, deep_result):
        _, result = deep_result
        top = result.top_areas(16)
        assert len(top) == 16
        world_area = 360.0 * 180.0
        assert all(rect.area_deg2 < world_area for rect in top)

    def test_cannot_start_twice_while_running(self):
        harness = CrawlHarness(seed=1, mean_concurrent=100)
        crawler = DeepCrawler(harness.clients[0], max_depth=1)
        crawler.start()
        with pytest.raises(RuntimeError):
            crawler.start()


class TestBoundedRetry:
    """Regression for the unbounded-429 bug: the old client rescheduled
    itself after a constant 2 s forever, so a permanently failing service
    meant an infinite retry loop.  The shared RetryPolicy bounds it."""

    @staticmethod
    def _client_against(handler):
        from repro.netsim.duplex import DuplexStream
        from repro.netsim.events import EventLoop
        from repro.netsim.topology import Network
        from repro.protocols.http import HttpClient, HttpServer

        from repro.crawler.client import CrawlClient

        loop = EventLoop()
        net = Network(loop)
        emulator, api_host = net.host("emulator"), net.host("api")
        net.duplex(emulator, api_host, rate_bps=100e6, delay_s=0.040)
        stream = DuplexStream(loop, net, "emulator", "api", name="crawler-0")
        HttpServer(loop, stream, handler, client_label="crawler-0")
        return loop, CrawlClient(loop, HttpClient(loop, stream), "crawler-0")

    def test_permanent_429_terminates_with_bounded_attempts(self):
        from repro.protocols.http import HttpResponse, HttpStatus

        loop, client = self._client_against(
            lambda request, identity: HttpResponse(HttpStatus.TOO_MANY_REQUESTS)
        )
        outcomes = []
        client.call("mapGeoBroadcastFeed", {},
                    lambda response, now: outcomes.append(response.status))
        loop.run()  # must terminate — the old loop never did
        assert client.gave_up == 1
        assert client.requests_sent == 1 + client.retry.max_attempts
        assert client.retries == client.retry.max_attempts
        assert outcomes == [HttpStatus.TOO_MANY_REQUESTS]
        assert client.throttled == client.requests_sent  # every try 429'd

    def test_injected_503_also_walks_the_policy(self):
        from repro.protocols.http import HttpResponse, HttpStatus

        loop, client = self._client_against(
            lambda request, identity: HttpResponse(HttpStatus.SERVICE_UNAVAILABLE)
        )
        outcomes = []
        client.call("getBroadcasts", {"broadcast_ids": []},
                    lambda response, now: outcomes.append(response.status))
        loop.run()
        assert client.gave_up == 1
        assert client.throttled == 0  # 503 is not throttling
        assert outcomes == [HttpStatus.SERVICE_UNAVAILABLE]

    def test_transient_429_recovers_without_giving_up(self):
        from repro.protocols.http import HttpResponse, HttpStatus

        failures = {"left": 2}

        def handler(request, identity):
            if failures["left"] > 0:
                failures["left"] -= 1
                return HttpResponse(HttpStatus.TOO_MANY_REQUESTS)
            return HttpResponse(HttpStatus.OK, json_body={"broadcasts": []})

        loop, client = self._client_against(handler)
        outcomes = []
        client.call("mapGeoBroadcastFeed", {},
                    lambda response, now: outcomes.append(response.status))
        loop.run()
        assert outcomes == [HttpStatus.OK]
        assert client.gave_up == 0
        assert client.throttled == 2


class TestRateLimiting:
    def test_throttling_engages_and_crawl_recovers(self):
        harness = CrawlHarness(
            seed=7, mean_concurrent=300,
            rate_limiter=RateLimiter(rate_per_s=0.5, burst=2),
        )
        client = harness.clients[0]
        client.pace_s = 0.05  # hammer the API
        crawler = DeepCrawler(client, max_depth=2)
        crawler.start()
        harness.run_until(900.0)
        assert client.throttled > 0
        assert crawler.result.areas  # still made progress via backoff


class TestTargetedCrawl:
    @pytest.fixture(scope="class")
    def crawl(self):
        harness = CrawlHarness(seed=13, mean_concurrent=700, identities=4)
        deep = DeepCrawler(harness.clients[0], max_depth=3)
        deep.start()
        harness.run_until(600.0)
        areas = deep.result.top_areas(16)
        targeted = TargetedCrawl(harness.clients, areas, duration_s=1800.0)
        targeted.start()
        harness.run_until(600.0 + 1800.0 + 5.0)
        return harness, targeted

    def test_tracks_broadcasts(self, crawl):
        _, targeted = crawl
        assert len(targeted.tracked) > 30

    def test_rounds_fast_with_four_identities(self, crawl):
        _, targeted = crawl
        assert all(r > 3 for r in targeted.rounds_completed)
        assert targeted.mean_round_s < 60.0

    def test_viewer_samples_collected(self, crawl):
        _, targeted = crawl
        sampled = [t for t in targeted.tracked.values() if t.viewer_samples]
        assert len(sampled) > 0.5 * len(targeted.tracked)

    def test_completed_broadcasts_have_durations(self, crawl):
        _, targeted = crawl
        done = targeted.completed_broadcasts()
        assert done
        for t in done:
            assert t.duration_estimate() is not None

    def test_validation(self):
        harness = CrawlHarness(seed=1, mean_concurrent=100)
        with pytest.raises(ValueError):
            TargetedCrawl([], [], duration_s=10.0)
        with pytest.raises(ValueError):
            TargetedCrawl(harness.clients, [], duration_s=10.0)


class TestAnalysis:
    def _tracked(self, n=200):
        out = []
        for i in range(n):
            zero = i % 10 == 0
            out.append(
                TrackedBroadcast(
                    broadcast_id=f"b{i:04}",
                    first_seen=0.0,
                    last_seen=float(120 + (i % 50) * 10),
                    start_time=0.0,
                    viewer_samples=[0.0] if zero else [float(1 + i % 30)],
                    available_for_replay=not zero,
                )
            )
        return out

    def test_analysis_aggregates(self):
        patterns = analyze_tracked(self._tracked())
        assert patterns.n_broadcasts == 200
        assert 0.05 < patterns.zero_viewer_fraction < 0.15
        assert patterns.duration_cdf.quantile(0.5) > 0
        assert patterns.zero_viewer_no_replay_fraction == 1.0
        rows = patterns.summary_rows()
        assert len(rows) == 10

    def test_analysis_rejects_empty(self):
        with pytest.raises(ValueError):
            analyze_tracked([])

    def test_local_hour_grouping(self):
        tracked = self._tracked(48)
        offsets = {t.broadcast_id: 3 for t in tracked}
        patterns = analyze_tracked(tracked, utc_offsets=offsets)
        assert set(patterns.viewers_by_local_hour) == {3}
