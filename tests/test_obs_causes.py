"""Stall forensics: the causal-attribution tentpole.

Covers the taxonomy/clamp math, ledger merge algebra, the golden
attribution report (byte-exact), and the hard guarantees: QoE is
bit-identical with attribution on or off, reports are byte-identical
across repeats and worker counts, and under Gilbert-Elliott loss the
dominant attributed stall cause is loss recovery.
"""

import dataclasses
import json
import pathlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.experiments.common import Workbench
from repro.faults.impair import LossSpec
from repro.faults.plan import FaultPlan
from repro.obs.causes import (
    CAUSE_HELP,
    CAUSES,
    KIND_JOIN,
    KIND_STALL,
    AttributionRecord,
    CauseCollector,
    clamp_attribution,
)
from repro.obs.export import attribution_jsonl, render_attribution
from repro.service.selection import DeliveryProtocol

FIXTURES = pathlib.Path(__file__).parent / "fixtures"
GOLDEN = FIXTURES / "attribution_golden.txt"

SEED = 77
N_SESSIONS = 4
LIMIT_MBPS = 2.0
GE_PLAN = FaultPlan(
    loss=LossSpec(model="gilbert", p_good_to_bad=0.02,
                  p_bad_to_good=0.3, bad_loss=0.5)
)


# ------------------------------------------------------------ unit: taxonomy


def test_taxonomy_is_sorted_and_documented():
    assert CAUSES == tuple(sorted(CAUSE_HELP))
    assert all(CAUSE_HELP[cause] for cause in CAUSES)
    # The emission sites wired across the tree all use these tags; a
    # removal here must be deliberate (O204 pins call sites to the dict).
    for expected in ("link.queue", "link.loss_recovery", "uplink.outage",
                     "service.packaging", "hls.playlist_wait",
                     "api.retry_backoff", "http.rate_limit",
                     "media.rate_starvation"):
        assert expected in CAUSE_HELP


# --------------------------------------------------------------- unit: clamp


@given(
    raw=st.dictionaries(
        st.sampled_from(CAUSES),
        st.floats(min_value=-1.0, max_value=1e6,
                  allow_nan=False, allow_infinity=False),
        max_size=len(CAUSES),
    ),
    duration=st.floats(min_value=0.0, max_value=1e4,
                       allow_nan=False, allow_infinity=False),
)
@settings(max_examples=200, deadline=None)
def test_clamp_never_exceeds_duration(raw, duration):
    clamped = clamp_attribution(raw, duration)
    total = 0.0
    for cause in sorted(clamped):
        total += clamped[cause]
    assert total <= duration
    assert all(seconds >= 0.0 for seconds in clamped.values())
    # Only positive raw contributions survive, none invented.
    assert set(clamped) <= {c for c, s in raw.items() if s > 0.0}


def test_clamp_preserves_proportions_and_under_budget_identity():
    raw = {"link.queue": 1.5, "link.loss_recovery": 3.0}
    clamped = clamp_attribution(raw, 2.0)
    assert clamped["link.loss_recovery"] == pytest.approx(2.0 * 3.0 / 4.5)
    assert clamped["link.queue"] == pytest.approx(2.0 * 1.5 / 4.5)
    # Fits inside the window: returned unscaled.
    assert clamp_attribution({"link.queue": 0.25}, 2.0) == {"link.queue": 0.25}
    assert clamp_attribution({}, 2.0) == {}
    assert clamp_attribution({"link.queue": -1.0}, 2.0) == {}
    assert clamp_attribution({"link.queue": 1.0}, 0.0) == {}


# ----------------------------------------------------- unit: collector/merge


def test_collector_windows_diff_against_base():
    collector = CauseCollector()
    collector.set_context("s1")
    collector.add("link.queue", 1.0)
    base = collector.totals()
    collector.add("link.queue", 0.5)
    collector.add("link.throttle", 0.2)
    collector.add("link.flap", -1.0)  # ignored: non-positive
    record = collector.record_window(KIND_STALL, start=10.0, duration=2.0,
                                     base=base)
    assert record.raw == {"link.queue": 0.5, "link.throttle": 0.2}
    assert record.causes == record.raw  # under budget: unscaled
    assert record.dominant() == "link.queue"
    assert collector.records == [record]
    assert record.attributed_s == pytest.approx(0.7)
    assert record.unattributed_s == pytest.approx(1.3)


def _collector_with(context, cause_seconds, windows=0):
    collector = CauseCollector()
    collector.set_context(context)
    for cause, seconds in cause_seconds:
        collector.add(cause, seconds)
    for index in range(windows):
        collector.record_window(KIND_STALL, start=float(index), duration=1.0,
                                base={})
    return collector


def test_merge_is_associative_and_context_keyed():
    snaps = [
        _collector_with("a", [("link.queue", 0.3), ("link.flap", 0.7)],
                        windows=1).snapshot(),
        _collector_with("b", [("link.queue", 1.1)], windows=2).snapshot(),
        _collector_with("c", [("service.outage", 2.0)]).snapshot(),
    ]
    ab = CauseCollector()
    ab.merge_from(snaps[0])
    ab.merge_from(snaps[1])
    left = CauseCollector()
    left.merge_from(ab.snapshot())
    left.merge_from(snaps[2])

    bc = CauseCollector()
    bc.merge_from(snaps[1])
    bc.merge_from(snaps[2])
    right = CauseCollector()
    right.merge_from(snaps[0])
    right.merge_from(bc.snapshot())

    assert left.snapshot() == right.snapshot()
    assert left.ledger_totals() == pytest.approx({
        "link.flap": 0.7, "link.queue": 1.4, "service.outage": 2.0,
    })


# ------------------------------------------------- pipeline: forensics runs

_RUNS = {}


def _forensics_run(workers=1):
    """One faulted, forced-RTMP batch with attribution + health on."""
    if workers in _RUNS:
        return _RUNS[workers]
    obs.deactivate()
    try:
        workbench = Workbench(
            seed=SEED, unlimited_sessions=N_SESSIONS,
            sweep_sessions_per_limit=1, sweep_limits_mbps=(LIMIT_MBPS,),
            causes=True, health=True, workers=workers, faults=GE_PLAN,
        )
        dataset = workbench.study.run_batch(
            N_SESSIONS, bandwidth_limit_mbps=LIMIT_MBPS,
            forced_protocol=DeliveryProtocol.RTMP,
        )
        telemetry = obs.active()
        result = {
            "sessions": dataset.sessions,
            "report": render_attribution(telemetry),
            "jsonl": attribution_jsonl(telemetry),
            "causes": telemetry.causes.snapshot(),
            "records": list(telemetry.causes.records),
            "health": telemetry.health.snapshot(),
        }
    finally:
        obs.deactivate()
    _RUNS[workers] = result
    return result


def test_golden_attribution_report():
    """The ASCII report is byte-exact against the committed fixture.

    Regenerate deliberately (the fixture pins emission sites, clamp
    math, and table formatting all at once)::

        PYTHONPATH=src python tests/regen_attribution_golden.py
    """
    report = _forensics_run(workers=1)["report"]
    assert report == GOLDEN.read_text(encoding="utf-8")


def test_report_byte_identical_across_repeats():
    first = _forensics_run(workers=1)
    _RUNS.pop(1)
    second = _forensics_run(workers=1)
    assert first["report"] == second["report"]
    assert first["jsonl"] == second["jsonl"]
    assert first["causes"] == second["causes"]


@pytest.mark.parametrize("workers", [2, 4])
def test_report_byte_identical_across_worker_counts(workers):
    serial = _forensics_run(workers=1)
    parallel = _forensics_run(workers=workers)
    assert parallel["report"] == serial["report"]
    assert parallel["jsonl"] == serial["jsonl"]
    assert parallel["causes"] == serial["causes"]
    assert parallel["sessions"] == serial["sessions"]


def test_attribution_coverage_and_ge_dominance():
    """Acceptance: >= 95% of stall seconds attributed, and under
    Gilbert-Elliott loss the dominant cause is loss recovery."""
    records = _forensics_run(workers=1)["records"]
    stalls = [r for r in records if r.kind == KIND_STALL]
    assert stalls
    total = sum(r.duration for r in stalls)
    attributed = sum(r.attributed_s for r in stalls)
    assert attributed >= 0.95 * total
    by_cause = {}
    for record in stalls:
        for cause, seconds in record.causes.items():
            by_cause[cause] = by_cause.get(cause, 0.0) + seconds
    dominant = max(sorted(by_cause), key=lambda c: (by_cause[c], c))
    assert dominant == "link.loss_recovery"


def test_per_window_causes_sum_within_duration():
    """Property from the issue: every attributed window's cause seconds
    sum to at most its duration (exactly, not approximately)."""
    records = _forensics_run(workers=1)["records"]
    assert records
    for record in records:
        assert record.kind in (KIND_STALL, KIND_JOIN)
        total = 0.0
        for cause in sorted(record.causes):
            assert record.causes[cause] >= 0.0
            total += record.causes[cause]
        assert total <= record.duration


def test_jsonl_records_round_trip():
    run = _forensics_run(workers=1)
    lines = run["jsonl"].splitlines()
    assert len(lines) == len(run["records"])
    for line, record in zip(lines, run["records"]):
        data = json.loads(line)
        assert data == record.to_dict()


def _strip_causes(qoe):
    return dataclasses.replace(
        qoe,
        join_causes=None,
        stalls=[dataclasses.replace(s, causes=None) for s in qoe.stalls],
    )


def test_qoe_bit_identical_with_attribution_on():
    """The tentpole's hard guarantee: causes + health change nothing in
    the dataset beyond the opt-in cause fields themselves."""
    instrumented = _forensics_run(workers=1)["sessions"]
    obs.deactivate()
    workbench = Workbench(
        seed=SEED, unlimited_sessions=N_SESSIONS,
        sweep_sessions_per_limit=1, sweep_limits_mbps=(LIMIT_MBPS,),
        faults=GE_PLAN,
    )
    baseline = workbench.study.run_batch(
        N_SESSIONS, bandwidth_limit_mbps=LIMIT_MBPS,
        forced_protocol=DeliveryProtocol.RTMP,
    ).sessions
    assert [_strip_causes(q) for q in instrumented] == baseline
    # ...and the instrumented run did attach cause breakdowns.
    assert any(q.join_causes for q in instrumented)
    assert any(s.causes for q in instrumented for s in q.stalls)


def test_session_cause_fields_none_without_attribution():
    obs.deactivate()
    workbench = Workbench(
        seed=SEED, unlimited_sessions=N_SESSIONS,
        sweep_sessions_per_limit=1, sweep_limits_mbps=(LIMIT_MBPS,),
    )
    sessions = workbench.study.run_batch(2).sessions
    assert all(q.join_causes is None for q in sessions)
    assert all(s.causes is None for q in sessions for s in q.stalls)
