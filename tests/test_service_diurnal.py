"""Diurnal behaviour of the service world.

The paper's deep crawls at different times of day found between 1K and
4K broadcasts; the arrival process here is thinned by broadcaster-local
time, so world concurrency and the composition of active regions breathe
over the day.
"""

import pytest

from repro.service.geo import GeoRect
from repro.service.world import ServiceWorld, WorldParameters
from repro.util.sampling import DIURNAL_PROFILE, diurnal_weight


def test_concurrency_varies_over_the_day():
    world = ServiceWorld(WorldParameters(mean_concurrent=800), seed=61)
    counts = []
    for hour in range(0, 48, 6):
        world.advance_to(hour * 3600.0)
        counts.append(world.live_count())
    assert max(counts) > 1.1 * min(counts)  # visible breathing
    assert all(200 < c < 2400 for c in counts)


def test_regional_activity_follows_local_night():
    """At a fixed UTC instant, regions where it is ~4am local are
    quieter per unit weight than regions in their local evening."""
    world = ServiceWorld(WorldParameters(mean_concurrent=1500), seed=62)
    world.advance_to(4 * 3600.0)  # 04:00 UTC
    # Europe (UTC+1): ~05:00 local (slump). East Asia (UTC+9): 13:00.
    europe = GeoRect(35.0, -10.0, 65.0, 30.0)
    asia = GeoRect(20.0, 100.0, 50.0, 145.0)
    europe_n = len(world.query_map(europe, cap=10_000))
    asia_n = len(world.query_map(asia, cap=10_000))
    # Normalize by the population weights of the centers in each box.
    from repro.service.geo import POPULATION_CENTERS

    def weight(rect):
        return sum(c.weight for c in POPULATION_CENTERS if rect.contains(c.location))

    europe_rate = europe_n / weight(europe)
    asia_rate = asia_n / weight(asia)
    assert asia_rate > europe_rate


def test_diurnal_profile_mean_used_for_rate_compensation():
    mean = sum(DIURNAL_PROFILE) / len(DIURNAL_PROFILE)
    assert 0.6 < mean < 0.9
    # The compensation keeps long-run concurrency near the target even
    # though instantaneous acceptance varies between min and max.
    assert min(DIURNAL_PROFILE) == diurnal_weight(4)
    assert max(DIURNAL_PROFILE) == diurnal_weight(22)
