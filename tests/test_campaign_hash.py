"""Canonical hashing properties (repro.campaign.hashing).

The memoization key must be canonical (``==`` configs agree), stable
(same bytes across processes and PYTHONHASHSEED), and sensitive (any
result-relevant field change lands in the digest).  Hypothesis drives
the equality/perturbation properties; a pinned golden digest guards
cross-restart stability.
"""

import dataclasses
import enum
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign.hashing import (
    EXECUTION_ONLY_FIELDS,
    SCHEMA_VERSION,
    UnhashableValueError,
    blob_hash,
    canonical_bytes,
    content_hash,
)
from repro.campaign.spec import SWEEP, CampaignSpec, CellSpec, cell_key, plan_cells
from repro.core.config import StudyConfig
from repro.faults.plan import FaultPlan

# Finite, non-NaN scalars: NaN is rejected by design (NaN != NaN, so a
# config holding one has no canonical identity).
finite_floats = st.floats(allow_nan=False, allow_infinity=True)
scalars = st.one_of(
    st.none(), st.booleans(), st.integers(), finite_floats,
    st.text(max_size=20), st.binary(max_size=20),
)
trees = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)


# ----------------------------------------------------------- canonicality

@settings(deadline=None)
@given(trees)
def test_encoding_is_deterministic(value):
    assert canonical_bytes(value) == canonical_bytes(value)
    assert content_hash(value) == content_hash(value)


@settings(deadline=None)
@given(st.one_of(st.booleans(), st.integers(), finite_floats),
       st.one_of(st.booleans(), st.integers(), finite_floats))
def test_scalar_hash_agrees_with_equality(x, y):
    """``x == y`` iff equal canonical bytes — the dataclass-``==``
    contract (True == 1 == 1.0, 0.0 == -0.0) and nothing more."""
    assert (canonical_bytes(x) == canonical_bytes(y)) == (x == y)


def test_numeric_type_does_not_matter():
    assert content_hash(1) == content_hash(1.0) == content_hash(True)
    assert content_hash(0.0) == content_hash(-0.0) == content_hash(0)


def test_list_and_tuple_encode_identically():
    assert content_hash([1, "a", 2.5]) == content_hash((1, "a", 2.5))


def test_dict_insertion_order_does_not_matter():
    assert content_hash({"a": 1, "b": 2}) == content_hash({"b": 2, "a": 1})


def test_set_iteration_order_does_not_matter():
    assert content_hash({3, 1, 2}) == content_hash({2, 3, 1})
    assert content_hash(frozenset({"x", "y"})) == content_hash({"y", "x"})


def test_adjacent_containers_do_not_collide():
    assert content_hash([1, 2]) != content_hash([12])
    assert content_hash(["1"]) != content_hash([1])
    assert content_hash([None]) != content_hash([0])
    assert content_hash([[1], [2]]) != content_hash([[1, 2]])
    assert content_hash({"a": 1}) != content_hash([("a", 1)])


def test_enum_encoding_includes_class_name():
    class Color(enum.Enum):
        RED = 1

    class Shade(enum.Enum):
        RED = 1

    assert content_hash(Color.RED) != content_hash(Shade.RED)
    assert content_hash(Color.RED) != content_hash(1)


def test_nan_is_rejected():
    with pytest.raises(UnhashableValueError):
        content_hash(float("nan"))
    with pytest.raises(UnhashableValueError):
        content_hash(StudyConfig(seed=1, watch_seconds=float("nan")))


def test_unknown_types_are_rejected():
    with pytest.raises(UnhashableValueError):
        content_hash(object())


def test_infinities_have_distinct_stable_encodings():
    assert content_hash(float("inf")) != content_hash(float("-inf"))
    assert content_hash(float("inf")) == content_hash(float("inf"))


def test_blob_hash_is_plain_sha256():
    import hashlib
    data = b"campaign blob"
    assert blob_hash(data) == hashlib.sha256(data).hexdigest()


# ------------------------------------------------------------ StudyConfig

config_kwargs = st.fixed_dictionaries({
    "seed": st.integers(min_value=0, max_value=2**32),
    "scale": st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
    "watch_seconds": st.floats(min_value=1.0, max_value=600.0,
                               allow_nan=False),
    "workers": st.integers(min_value=1, max_value=16),
    "exact_network": st.booleans(),
})


@settings(deadline=None)
@given(config_kwargs)
def test_equal_configs_hash_equal(kwargs):
    assert content_hash(StudyConfig(**kwargs)) == \
        content_hash(StudyConfig(**kwargs))


@settings(deadline=None)
@given(config_kwargs, st.integers(min_value=1, max_value=2**31))
def test_any_result_relevant_perturbation_changes_the_hash(kwargs, delta):
    base = StudyConfig(**kwargs)
    for field in ("seed", "scale", "watch_seconds", "hls_viewer_threshold",
                  "access_bandwidth_bps"):
        perturbed = dataclasses.replace(
            base, **{field: getattr(base, field) + delta}
        )
        assert content_hash(perturbed) != content_hash(base), field
    flipped = dataclasses.replace(base, exact_network=not base.exact_network)
    assert content_hash(flipped) != content_hash(base)


@settings(deadline=None)
@given(config_kwargs, st.integers(min_value=1, max_value=16))
def test_workers_is_execution_only(kwargs, workers):
    """Worker count cannot change results (the parallel bit-identity
    suite proves it), so it must not change the key either."""
    assert ("StudyConfig", "workers") in EXECUTION_ONLY_FIELDS
    base = StudyConfig(**kwargs)
    assert content_hash(dataclasses.replace(base, workers=workers)) == \
        content_hash(base)


def test_integral_float_fields_match_int_construction():
    # StudyConfig(watch_seconds=60) == StudyConfig(watch_seconds=60.0)
    # under dataclass ==, so the keys must agree too.
    assert content_hash(StudyConfig(seed=1, watch_seconds=60)) == \
        content_hash(StudyConfig(seed=1, watch_seconds=60.0))


def test_nested_fault_plan_perturbations_change_the_hash():
    base = StudyConfig(
        seed=1, faults=FaultPlan.parse("loss=0.02,jitter=0.005,api5xx=0.1")
    )
    tweaked_loss = StudyConfig(
        seed=1, faults=FaultPlan.parse("loss=0.021,jitter=0.005,api5xx=0.1")
    )
    tweaked_api = StudyConfig(
        seed=1, faults=FaultPlan.parse("loss=0.02,jitter=0.005,api5xx=0.11")
    )
    no_faults = StudyConfig(seed=1)
    digests = {content_hash(config) for config in
               (base, tweaked_loss, tweaked_api, no_faults)}
    assert len(digests) == 4
    # And the identical plan parsed twice is a cache hit.
    same = StudyConfig(
        seed=1, faults=FaultPlan.parse("loss=0.02,jitter=0.005,api5xx=0.1")
    )
    assert content_hash(same) == content_hash(base)


# -------------------------------------------------------------- stability

#: Golden digest of a fixed cell, computed once and pinned.  If this
#: test fails, the canonical encoding changed: that is only legal
#: together with a SCHEMA_VERSION bump (which changes the salt and
#: therefore this digest — re-pin it in the same commit).
GOLDEN_CELL_KEY = "d7b34095ac3ccdfd846a9606e6efe445d2e95b2952923903299a9bcf3833b66a"


def _golden_cell() -> CellSpec:
    return CellSpec(
        kind=SWEEP,
        config=StudyConfig(seed=2016, scale=0.05, watch_seconds=60.0),
        n_sessions=4,
        bandwidth_limit_mbps=0.5,
    )


def test_cell_key_is_pinned_across_restarts():
    assert SCHEMA_VERSION == 1
    assert cell_key(_golden_cell()) == GOLDEN_CELL_KEY


def test_cell_key_stable_in_a_fresh_interpreter():
    """Same digest under a different PYTHONHASHSEED in a new process —
    the walk must never lean on hash()/repr ordering."""
    code = (
        "from repro.campaign.spec import SWEEP, CellSpec, cell_key\n"
        "from repro.core.config import StudyConfig\n"
        "cell = CellSpec(kind=SWEEP,\n"
        "                config=StudyConfig(seed=2016, scale=0.05,\n"
        "                                   watch_seconds=60.0),\n"
        "                n_sessions=4, bandwidth_limit_mbps=0.5)\n"
        "print(cell_key(cell))\n"
    )
    import os
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(repo_root, "src")
    env["PYTHONHASHSEED"] = "12345"
    out = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True, text=True, check=True, env=env,
    )
    assert out.stdout.strip() == GOLDEN_CELL_KEY


def test_plan_keys_are_unique_and_order_stable():
    spec = CampaignSpec(seeds=(1, 2), limits_mbps=(0.5, 2.0, 100.0))
    cells = plan_cells(spec)
    keys = [cell_key(cell) for cell in cells]
    assert len(set(keys)) == len(keys) == 6
    assert keys == [cell_key(cell) for cell in plan_cells(spec)]


def test_salt_separates_schema_versions():
    # The digest of a value is not the raw sha256 of its encoding: the
    # version salt is in front, so bumping SCHEMA_VERSION orphans every
    # old key instead of silently serving stale blobs.
    import hashlib
    raw = hashlib.sha256(canonical_bytes(42)).hexdigest()
    assert content_hash(42) != raw
