"""Tests for the API server, rate limiting and protocol selection."""

import random

import pytest

from repro.protocols.http import HttpRequest, HttpStatus
from repro.service.api import API_PATH, ApiServer, RateLimiter
from repro.service.chat import ChatFeed
from repro.service.ingest import CDN_EDGES, IngestPool, nearest_cdn_edge
from repro.service.geo import GeoPoint
from repro.service.selection import DeliveryProtocol, select_protocol
from repro.service.world import ServiceWorld, WorldParameters


@pytest.fixture()
def api():
    world = ServiceWorld(WorldParameters(mean_concurrent=300), seed=21)
    ingest = IngestPool(random.Random(1))
    clock_box = {"now": 0.0}
    server = ApiServer(
        world, ingest, clock=lambda: clock_box["now"], rng=random.Random(2),
        rate_limiter=RateLimiter(rate_per_s=1000.0, burst=1000),
    )
    return server, clock_box, world


def post(command, **payload):
    body = {"request": command}
    body.update(payload)
    return HttpRequest("POST", API_PATH, json_body=body)


class TestApiDispatch:
    def test_unknown_endpoint_404(self, api):
        server, _, _ = api
        resp = server.handle(HttpRequest("GET", "/nope"), "u1")
        assert resp.status == HttpStatus.NOT_FOUND

    def test_unknown_command_404(self, api):
        server, _, _ = api
        resp = server.handle(post("doSomething"), "u1")
        assert resp.status == HttpStatus.NOT_FOUND

    def test_map_geo_broadcast_feed(self, api):
        server, _, world = api
        resp = server.handle(
            post("mapGeoBroadcastFeed", p1_lat=-90.0, p1_lng=-180.0,
                 p2_lat=90.0, p2_lng=180.0, include_replay=False),
            "u1",
        )
        assert resp.status == HttpStatus.OK
        broadcasts = resp.json_body["broadcasts"]
        assert 0 < len(broadcasts) <= world.params.map_response_cap
        assert all(len(b["id"]) == 13 for b in broadcasts)

    def test_map_bad_coordinates(self, api):
        server, _, _ = api
        resp = server.handle(post("mapGeoBroadcastFeed", p1_lat="x"), "u1")
        assert resp.status == HttpStatus.NOT_FOUND

    def test_get_broadcasts_descriptions(self, api):
        server, _, world = api
        ids = [b.broadcast_id for b in world.live_broadcasts()[:5]]
        resp = server.handle(post("getBroadcasts", broadcast_ids=ids), "u1")
        assert resp.status == HttpStatus.OK
        descriptions = resp.json_body["broadcasts"]
        assert {d["id"] for d in descriptions} == set(ids)
        assert all("n_watching" in d for d in descriptions)

    def test_get_broadcasts_ignores_unknown_ids(self, api):
        server, _, _ = api
        resp = server.handle(post("getBroadcasts", broadcast_ids=["nope"]), "u1")
        assert resp.json_body["broadcasts"] == []

    def test_get_broadcasts_requires_list(self, api):
        server, _, _ = api
        resp = server.handle(post("getBroadcasts", broadcast_ids="abc"), "u1")
        assert resp.status == HttpStatus.NOT_FOUND

    def test_playback_meta_stored(self, api):
        server, _, _ = api
        stats = {"n_stalls": 2, "stall_time": 4.5, "delay_ms": 2300}
        resp = server.handle(post("playbackMeta", stats=stats), "phone-1")
        assert resp.status == HttpStatus.OK
        assert resp.json_body == {}
        assert server.playback_metas[0].stats == stats
        assert server.playback_metas[0].identity == "phone-1"

    def test_access_video_rtmp_for_unpopular(self, api):
        server, _, world = api
        quiet = next(b for b in world.live_broadcasts()
                     if b.viewers_at(world.now) < 50)
        resp = server.handle(post("accessVideo", broadcast_id=quiet.broadcast_id), "u1")
        assert resp.json_body["protocol"] == "rtmp"
        assert resp.json_body["port"] == 80
        assert resp.json_body["host"].startswith("vidman-")

    def test_access_video_unknown_broadcast(self, api):
        server, _, _ = api
        resp = server.handle(post("accessVideo", broadcast_id="missing"), "u1")
        assert resp.status == HttpStatus.NOT_FOUND


class TestRateLimiter:
    def test_burst_then_throttle(self):
        limiter = RateLimiter(rate_per_s=1.0, burst=3)
        now = 0.0
        results = [limiter.allow("u", now) for _ in range(5)]
        assert results == [True, True, True, False, False]
        assert limiter.throttled_count == 2

    def test_tokens_refill_over_time(self):
        limiter = RateLimiter(rate_per_s=2.0, burst=1)
        assert limiter.allow("u", 0.0)
        assert not limiter.allow("u", 0.1)
        assert limiter.allow("u", 0.7)  # refilled

    def test_identities_independent(self):
        limiter = RateLimiter(rate_per_s=1.0, burst=1)
        assert limiter.allow("a", 0.0)
        assert limiter.allow("b", 0.0)
        assert not limiter.allow("a", 0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            RateLimiter(rate_per_s=0.0)
        with pytest.raises(ValueError):
            RateLimiter(rate_per_s=1.0, burst=0)

    def test_api_returns_429_when_throttled(self):
        world = ServiceWorld(WorldParameters(mean_concurrent=50), seed=3)
        server = ApiServer(
            world, IngestPool(random.Random(1)), clock=lambda: 0.0,
            rng=random.Random(2), rate_limiter=RateLimiter(rate_per_s=1.0, burst=1),
        )
        first = server.handle(post("getBroadcasts", broadcast_ids=[]), "u")
        second = server.handle(post("getBroadcasts", broadcast_ids=[]), "u")
        assert first.status == HttpStatus.OK
        assert second.status == HttpStatus.TOO_MANY_REQUESTS


class TestInfrastructure:
    def test_pool_has_87_servers(self):
        pool = IngestPool(random.Random(5))
        assert len(pool.servers) == 87
        assert len({s.ip for s in pool.servers}) > 80  # essentially unique

    def test_every_continent_except_africa(self):
        pool = IngestPool(random.Random(6))
        regions = {s.region for s in pool.servers}
        assert {"us-east-1", "eu-central-1", "ap-northeast-1", "sa-east-1",
                "ap-southeast-2"} <= regions

    def test_nearest_to_broadcaster(self):
        pool = IngestPool(random.Random(7))
        tokyo = GeoPoint(35.7, 139.7)
        chosen = pool.nearest_to(tokyo)
        assert chosen.region in ("ap-northeast-1",)

    def test_reverse_dns_shape(self):
        pool = IngestPool(random.Random(8))
        server = pool.servers[0]
        assert server.reverse_dns().startswith(f"ec2-{server.ip.replace('.', '-')}")
        assert server.reverse_dns().endswith(".compute.amazonaws.com")

    def test_two_cdn_edges(self):
        assert len(CDN_EDGES) == 2

    def test_cdn_edge_by_viewer_location(self):
        helsinki = GeoPoint(60.2, 24.9)
        sf = GeoPoint(37.8, -122.4)
        assert nearest_cdn_edge(helsinki).name == "fastly-eu"
        assert nearest_cdn_edge(sf).name == "fastly-sf"


class TestSelection:
    def _broadcast_with_viewers(self, viewers):
        from repro.service.broadcast import sample_broadcast
        from repro.service.geo import POPULATION_CENTERS

        b = sample_broadcast(random.Random(9), 0.0, GeoPoint(0, 0),
                             POPULATION_CENTERS[0])
        b.mean_viewers = viewers
        b.duration_s = 1000.0
        b.start_time = 0.0
        return b

    def test_popular_gets_hls(self):
        b = self._broadcast_with_viewers(5000.0)
        assert select_protocol(b, 150.0) == DeliveryProtocol.HLS

    def test_quiet_gets_rtmp(self):
        b = self._broadcast_with_viewers(3.0)
        assert select_protocol(b, 150.0) == DeliveryProtocol.RTMP

    def test_threshold_validation(self):
        b = self._broadcast_with_viewers(10.0)
        with pytest.raises(ValueError):
            select_protocol(b, 150.0, threshold=-1.0)


class TestChatFeed:
    def test_message_rate_scales_with_viewers_then_caps(self):
        rng = random.Random(10)
        small = ChatFeed(random.Random(1), viewers=10.0)
        big = ChatFeed(random.Random(2), viewers=100.0)
        huge = ChatFeed(random.Random(3), viewers=100_000.0)
        assert small.message_rate_per_s < big.message_rate_per_s
        assert huge.message_rate_per_s == pytest.approx(6.0)

    def test_messages_poisson_stream(self):
        feed = ChatFeed(random.Random(4), viewers=200.0)
        msgs = list(feed.messages(60.0))
        expected = feed.message_rate_per_s * 60.0
        assert 0.5 * expected < len(msgs) < 1.6 * expected
        times = [m.timestamp for m in msgs]
        assert times == sorted(times)
        assert all(0 <= t < 60.0 for t in times)

    def test_zero_viewers_no_messages(self):
        feed = ChatFeed(random.Random(5), viewers=0.0)
        assert list(feed.messages(60.0)) == []

    def test_avatars_repeat_across_messages(self):
        feed = ChatFeed(random.Random(6), viewers=500.0, chatter_pool_size=5)
        msgs = list(feed.messages(300.0))
        usernames = {m.username for m in msgs}
        assert len(usernames) <= 5
        assert len(msgs) > len(usernames)  # repeats -> repeated downloads

    def test_message_frame_bytes_positive(self):
        feed = ChatFeed(random.Random(7), viewers=100.0)
        msg = next(iter(feed.messages(60.0)))
        assert msg.frame_bytes() > 20

    def test_expected_avatar_traffic_substantial_for_active_chat(self):
        feed = ChatFeed(random.Random(8), viewers=1000.0)
        assert feed.expected_avatar_bps() > 500_000  # >0.5 Mbps

    def test_validation(self):
        with pytest.raises(ValueError):
            ChatFeed(random.Random(9), viewers=-1.0)
        feed = ChatFeed(random.Random(10), viewers=10.0)
        with pytest.raises(ValueError):
            list(feed.messages(0.0))
