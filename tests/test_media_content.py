"""Tests for the content-complexity model."""

import random

import pytest

from repro.media.content import (
    CONTENT_PROFILES,
    ContentProcess,
    ContentProfile,
    pick_profile,
)


def process(name="static_talker", seed=1):
    return ContentProcess(CONTENT_PROFILES[name], random.Random(seed))


def test_profiles_weights_sum_to_one():
    assert sum(p.weight for p in CONTENT_PROFILES.values()) == pytest.approx(1.0)


def test_complexity_stays_in_bounds():
    p = process("sports_tv")
    for _ in range(5000):
        c = p.step()
        assert ContentProcess.MIN_COMPLEXITY <= c <= ContentProcess.MAX_COMPLEXITY


def test_mean_reversion_to_profile_mean():
    p = process("outdoor_walk", seed=7)
    samples = [p.step() for _ in range(20000)]
    mean = sum(samples) / len(samples)
    assert mean == pytest.approx(CONTENT_PROFILES["outdoor_walk"].mean_complexity, rel=0.15)


def test_static_talker_less_variable_than_sports():
    def variance(name):
        p = process(name, seed=3)
        samples = [p.step() for _ in range(5000)]
        mean = sum(samples) / len(samples)
        return sum((s - mean) ** 2 for s in samples) / len(samples)

    assert variance("static_talker") < variance("sports_tv")


def test_deterministic_given_seed():
    a = [process(seed=9).step() for _ in range(1)]
    b = [process(seed=9).step() for _ in range(1)]
    assert a == b


def test_pick_profile_distribution():
    rng = random.Random(11)
    picks = [pick_profile(rng).name for _ in range(5000)]
    share_talker = picks.count("static_talker") / len(picks)
    assert 0.3 < share_talker < 0.5
    assert set(picks) <= set(CONTENT_PROFILES)


def test_scene_changes_do_occur():
    profile = ContentProfile("jumpy", 1.0, 0.0, scene_change_rate=0.5, weight=1.0)
    p = ContentProcess(profile, random.Random(5))
    values = {round(p.step(), 6) for _ in range(50)}
    # With volatility 0 the only variation comes from scene changes.
    assert len(values) > 5
