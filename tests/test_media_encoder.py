"""Tests for the video encoder model."""

import random

import pytest

from repro.media.content import CONTENT_PROFILES, ContentProcess
from repro.media.encoder import EncoderSettings, GopPattern, VideoEncoder


def make_encoder(seed=1, wallclock_start=0.0, **overrides):
    defaults = dict(target_bps=300_000.0)
    defaults.update(overrides)
    settings = EncoderSettings(**defaults)
    content = ContentProcess(CONTENT_PROFILES["indoor_event"], random.Random(seed * 7))
    return VideoEncoder(settings, content, random.Random(seed), wallclock_start=wallclock_start)


class TestGopPattern:
    def test_display_types_ibp(self):
        types = GopPattern("IBP", i_period=8).display_types()
        assert types[0] == "I"
        assert "B" in types and "P" in types
        assert types[-1] != "B"
        assert len(types) == 8

    def test_display_types_ip(self):
        types = GopPattern("IP", i_period=10).display_types()
        assert types == ["I"] + ["P"] * 9

    def test_display_types_intra_only(self):
        assert GopPattern("I", i_period=4).display_types() == ["I"] * 4

    def test_no_two_consecutive_b(self):
        types = GopPattern("IBP", i_period=36).display_types()
        for a, b in zip(types, types[1:]):
            assert not (a == "B" and b == "B")

    def test_validation(self):
        with pytest.raises(ValueError):
            GopPattern("IPB")
        with pytest.raises(ValueError):
            GopPattern("IBP", i_period=0)

    def test_sample_population_shares(self):
        rng = random.Random(3)
        kinds = [GopPattern.sample(rng).kind for _ in range(4000)]
        assert 0.73 < kinds.count("IBP") / len(kinds) < 0.86
        assert 0.14 < kinds.count("IP") / len(kinds) < 0.25
        assert 0 < kinds.count("I") / len(kinds) < 0.03

    def test_sample_i_period_near_36(self):
        rng = random.Random(4)
        periods = [GopPattern.sample(rng).i_period for _ in range(500)]
        assert 33 < sum(periods) / len(periods) < 39


class TestVideoEncoder:
    def test_bitrate_near_target(self):
        enc = make_encoder()
        frames = enc.encode_all(60.0)
        assert frames
        assert enc.average_bitrate_bps(60.0) == pytest.approx(300_000.0, rel=0.15)

    def test_frame_rate_below_nominal(self):
        enc = make_encoder()
        frames = enc.encode_all(30.0)
        fps = len(frames) / 30.0
        assert 20.0 < fps <= 30.5

    def test_drops_reduce_fps(self):
        low = make_encoder(seed=2, drop_rate=0.0)
        high = make_encoder(seed=2, drop_rate=0.20)
        assert len(high.encode_all(30.0)) < len(low.encode_all(30.0))

    def test_pts_gaps_where_frames_dropped(self):
        enc = make_encoder(seed=3, drop_rate=0.3)
        frames = sorted(enc.encode_all(20.0), key=lambda f: f.pts)
        gaps = [b.pts - a.pts for a, b in zip(frames, frames[1:])]
        # Some gaps must be well above the nominal interval.
        assert max(gaps) > 2.0 / 30.0

    def test_decode_order_b_after_reference(self):
        enc = make_encoder(seed=4, drop_rate=0.0)
        frames = enc.encode_all(10.0)
        # Every B frame must appear after a reference frame with larger pts.
        last_ref_pts = -1.0
        for f in frames:
            if f.frame_type in ("I", "P"):
                last_ref_pts = f.pts
            else:
                assert f.pts < last_ref_pts

    def test_i_frames_every_period(self):
        enc = make_encoder(seed=5, drop_rate=0.0)
        frames = enc.encode_all(30.0)
        i_indices = [k for k, f in enumerate(frames) if f.frame_type == "I"]
        spacings = [b - a for a, b in zip(i_indices, i_indices[1:])]
        assert spacings
        assert all(30 <= s <= 42 for s in spacings)

    def test_ntp_timestamps_roughly_every_second(self):
        enc = make_encoder(seed=6, wallclock_start=1000.0)
        frames = enc.encode_all(30.0)
        stamps = [f.ntp_timestamp for f in frames if f.ntp_timestamp is not None]
        assert 25 <= len(stamps) <= 35
        assert all(ts >= 1000.0 for ts in stamps)

    def test_ntp_only_on_reference_frames(self):
        enc = make_encoder(seed=7)
        for f in enc.encode_all(20.0):
            if f.ntp_timestamp is not None:
                assert f.frame_type != "B"

    def test_average_qp_reasonable(self):
        enc = make_encoder(seed=8)
        enc.encode_all(30.0)
        assert 10 <= enc.average_qp <= 51

    def test_i_only_streams_much_larger_or_much_worse(self):
        # Intra-only coding is drastically less efficient: at the same
        # target bitrate the controller must raise QP far above the IBP
        # stream's (the paper saw I-only explain bitrate outliers).
        ibp = make_encoder(seed=9, gop=GopPattern("IBP"))
        intra = make_encoder(seed=9, gop=GopPattern("I"))
        ibp.encode_all(30.0)
        intra.encode_all(30.0)
        assert intra.average_qp > ibp.average_qp + 5

    def test_settings_validation(self):
        with pytest.raises(ValueError):
            EncoderSettings(target_bps=0)
        with pytest.raises(ValueError):
            EncoderSettings(target_bps=1e5, drop_rate=1.5)
        with pytest.raises(ValueError):
            EncoderSettings(target_bps=1e5, nominal_fps=0)

    def test_generate_validation(self):
        with pytest.raises(ValueError):
            make_encoder().encode_all(0)

    def test_deterministic(self):
        a = [(f.pts, f.nbytes) for f in make_encoder(seed=10).encode_all(10.0)]
        b = [(f.pts, f.nbytes) for f in make_encoder(seed=10).encode_all(10.0)]
        assert a == b
