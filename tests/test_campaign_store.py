"""Store invariants (repro.campaign.store).

The crash-safety story rests on three mechanical guarantees tested
here: blobs are atomic and verified on read, the journal tolerates torn
and damaged lines without losing valid records, and one directory
admits one runner.  gc must never delete a blob any journal record
references.
"""

import json
import os
import zlib

import pytest

from repro.campaign.hashing import blob_hash
from repro.campaign.store import (
    RECORD_CELL,
    CampaignStore,
    CorruptBlobError,
    StoreError,
    StoreLockedError,
)


@pytest.fixture
def store(tmp_path):
    store = CampaignStore(str(tmp_path / "camp"))
    yield store
    store.close()


def _open_for_append(store):
    store.acquire_lock()
    return store.open_journal()


# ------------------------------------------------------------------- blobs

def test_put_blob_round_trips_and_is_content_addressed(store):
    data = b"x" * 1000
    address = store.put_blob(data)
    assert address == blob_hash(data)
    assert store.has_blob(address)
    assert store.read_blob(address) == data
    assert store.blob_addresses() == [address]


def test_put_blob_is_idempotent(store):
    address_one = store.put_blob(b"same bytes")
    address_two = store.put_blob(b"same bytes")
    assert address_one == address_two
    assert len(store.blob_addresses()) == 1


def test_corrupted_blob_is_reported_never_served(store):
    address = store.put_blob(b"precious result bytes")
    path = store._blob_path(address)
    with open(path, "r+b") as blob_file:
        blob_file.seek(4)
        blob_file.write(b"ROT")
    with pytest.raises(CorruptBlobError) as excinfo:
        store.read_blob(address)
    assert excinfo.value.address == address
    assert excinfo.value.actual != address


def test_put_blob_heals_a_corrupted_object(store):
    """Recomputing a cell whose blob rotted must rewrite the object —
    path existence alone is not proof of integrity."""
    data = b"deterministic cell result"
    address = store.put_blob(data)
    with open(store._blob_path(address), "r+b") as blob_file:
        blob_file.write(b"ROTROTROT")
    assert store.put_blob(data) == address
    assert store.read_blob(address) == data


def test_put_blob_leaves_no_temp_droppings(store):
    store.put_blob(b"a")
    store.put_blob(b"b")
    for root, _dirs, names in os.walk(store.path):
        assert not [n for n in names if n.endswith(".tmp")], (root, names)


# ----------------------------------------------------------------- journal

def test_journal_append_scan_round_trip(store):
    _open_for_append(store)
    records = [
        {"kind": RECORD_CELL, "key": "k1", "blob": "b1"},
        {"kind": "checkpoint", "completed": 1, "planned": 2},
        {"kind": RECORD_CELL, "key": "k2", "blob": "b2"},
    ]
    for record in records:
        store.append_record(record)
    scan = store.scan_journal()
    assert scan.records == records
    assert scan.damaged == 0
    assert not scan.torn_tail
    assert store.completed_cells(scan) == {"k1": "b1", "k2": "b2"}


def test_completed_cells_last_record_wins(store):
    _open_for_append(store)
    store.append_record({"kind": RECORD_CELL, "key": "k", "blob": "old"})
    store.append_record({"kind": RECORD_CELL, "key": "k", "blob": "new"})
    assert store.completed_cells() == {"k": "new"}


def test_append_requires_open_journal(store):
    with pytest.raises(StoreError):
        store.append_record({"kind": "checkpoint"})


def test_open_journal_requires_the_lock(store):
    with pytest.raises(StoreError):
        store.open_journal()


def test_torn_final_record_is_detected_and_truncated(store):
    _open_for_append(store)
    store.append_record({"kind": RECORD_CELL, "key": "k1", "blob": "b1"})
    store.close()
    # Simulate a power cut mid-append: a partial line with no newline.
    with open(store.journal_path, "ab") as journal:
        journal.write(b'deadbeef {"kind":"cell","key":"k2"')
    scan = store.scan_journal()
    assert scan.torn_tail
    assert [r["key"] for r in scan.records] == ["k1"]
    # Reopening truncates the torn tail; the journal is clean again.
    reopened = _open_for_append(store)
    assert reopened.torn_tail
    store.append_record({"kind": RECORD_CELL, "key": "k3", "blob": "b3"})
    final = store.scan_journal()
    assert not final.torn_tail and final.damaged == 0
    assert [r["key"] for r in final.records] == ["k1", "k3"]


def test_complete_final_record_missing_only_its_newline_still_counts(store):
    _open_for_append(store)
    store.append_record({"kind": RECORD_CELL, "key": "k1", "blob": "b1"})
    store.close()
    with open(store.journal_path, "r+b") as journal:
        journal.seek(0, os.SEEK_END)
        journal.truncate(journal.tell() - 1)  # chop just the newline
    scan = store.scan_journal()
    assert not scan.torn_tail
    assert [r["key"] for r in scan.records] == ["k1"]


def test_damaged_middle_record_is_dropped_not_fatal(store):
    _open_for_append(store)
    store.append_record({"kind": RECORD_CELL, "key": "k1", "blob": "b1"})
    store.append_record({"kind": RECORD_CELL, "key": "k2", "blob": "b2"})
    store.append_record({"kind": RECORD_CELL, "key": "k3", "blob": "b3"})
    store.close()
    # Flip bytes inside the middle line (bit rot): CRC must catch it.
    with open(store.journal_path, "rb") as journal:
        lines = journal.read().splitlines(keepends=True)
    lines[1] = lines[1][:12] + b"XX" + lines[1][14:]
    with open(store.journal_path, "wb") as journal:
        journal.writelines(lines)
    scan = store.scan_journal()
    assert scan.damaged == 1
    assert [r["key"] for r in scan.records] == ["k1", "k3"]
    assert store.completed_cells(scan) == {"k1": "b1", "k3": "b3"}


def test_crc_framing_is_what_it_claims(store):
    _open_for_append(store)
    store.append_record({"kind": "checkpoint", "completed": 0})
    store.close()
    with open(store.journal_path, "rb") as journal:
        line = journal.readline()
    crc_hex, payload = line.split(b" ", 1)
    payload = payload.rstrip(b"\n")
    assert int(crc_hex, 16) == zlib.crc32(payload) & 0xFFFFFFFF
    assert json.loads(payload) == {"completed": 0, "kind": "checkpoint"}


def test_post_append_hook_fires_after_the_fsync(store):
    _open_for_append(store)
    seen = []
    store.post_append = lambda record: seen.append(record["kind"])
    store.append_record({"kind": "checkpoint", "completed": 1})
    assert seen == ["checkpoint"]


# -------------------------------------------------------------------- lock

def test_second_runner_is_refused(store):
    store.acquire_lock()
    other = CampaignStore(store.path)
    with pytest.raises(StoreLockedError):
        other.acquire_lock()
    store.release_lock()
    other.acquire_lock()  # freed: now it can
    other.close()


def test_context_manager_locks_and_releases(tmp_path):
    path = str(tmp_path / "camp")
    with CampaignStore(path) as store:
        with pytest.raises(StoreLockedError):
            CampaignStore(path).acquire_lock()
    follower = CampaignStore(path)
    follower.acquire_lock()
    follower.close()


# --------------------------------------------------------------------- gc

def test_gc_never_deletes_a_journal_referenced_blob(store):
    _open_for_append(store)
    live = store.put_blob(b"live cell result")
    dead = store.put_blob(b"orphaned result")
    store.append_record({"kind": RECORD_CELL, "key": "k", "blob": live})
    removed_blobs, _ = store.gc()
    assert removed_blobs == 1
    assert store.has_blob(live)
    assert not store.has_blob(dead)
    assert store.read_blob(live) == b"live cell result"


def test_gc_sweeps_temp_orphans(store):
    _open_for_append(store)
    address = store.put_blob(b"kept")
    store.append_record({"kind": RECORD_CELL, "key": "k", "blob": address})
    shard_dir = os.path.dirname(store._blob_path(address))
    with open(os.path.join(shard_dir, "halfwrite.tmp"), "wb") as orphan:
        orphan.write(b"torn")
    with open(os.path.join(store.path, "dataset.pkl.tmp"), "wb") as orphan:
        orphan.write(b"torn")
    blobs_removed, tmp_removed = store.gc()
    assert blobs_removed == 0
    assert tmp_removed == 2
    assert store.has_blob(address)


def test_gc_on_empty_store_is_a_no_op(store):
    assert store.gc() == (0, 0)


# --------------------------------------------------------------- artifacts

def test_artifacts_write_atomically_and_overwrite(store):
    path = store.write_artifact("dataset.pkl", b"v1")
    assert store.read_artifact("dataset.pkl") == b"v1"
    assert store.write_artifact("dataset.pkl", b"v2") == path
    assert store.read_artifact("dataset.pkl") == b"v2"
    assert store.read_artifact("never-written") is None
