"""Integration tests: full viewing sessions over the simulated testbed."""

import random

import pytest

from repro.automation.devices import GALAXY_S3, GALAXY_S4
from repro.core.session import SessionSetup, ViewingSession
from repro.service.broadcast import sample_broadcast
from repro.service.geo import POPULATION_CENTERS, GeoPoint
from repro.service.selection import DeliveryProtocol


def make_broadcast(seed=5, mean_viewers=12.0, duration=7200.0):
    b = sample_broadcast(random.Random(seed), 0.0, GeoPoint(41.0, 28.9),
                         POPULATION_CENTERS[17])  # Istanbul
    b.mean_viewers = mean_viewers
    b.duration_s = duration
    return b


def run_session(protocol=DeliveryProtocol.RTMP, limit=100.0, watch=30.0,
                viewers=12.0, chat_ui_on=True, cache_avatars=False, seed=5,
                device=GALAXY_S4):
    setup = SessionSetup(
        broadcast=make_broadcast(seed=seed, mean_viewers=viewers),
        age_at_join=600.0,
        protocol=protocol,
        device=device,
        bandwidth_limit_mbps=limit,
        watch_seconds=watch,
        chat_ui_on=chat_ui_on,
        cache_avatars=cache_avatars,
        seed=seed,
    )
    return ViewingSession(setup).run()


class TestRtmpSession:
    def test_smooth_playback_unlimited(self):
        artifacts = run_session()
        qoe = artifacts.qoe
        assert qoe.protocol == "rtmp"
        assert qoe.join_time_s < 4.0
        assert qoe.playback_s > 20.0
        assert qoe.consistent()

    def test_delivery_latency_sub_second(self):
        qoe = run_session().qoe
        samples = sorted(qoe.delivery_latency_samples)
        assert samples
        # The median sample is fast; a mid-session uplink outage may
        # inflate the mean (that is the paper's stall mechanism).
        assert 0.0 < samples[len(samples) // 2] < 0.5
        assert qoe.delivery_latency_s < 2.5

    def test_playback_latency_a_few_seconds(self):
        qoe = run_session().qoe
        assert 1.0 < qoe.playback_latency_s < 6.0

    def test_media_stats_recovered(self):
        qoe = run_session().qoe
        assert 100_000 < qoe.video_bitrate_bps < 1_500_000
        assert 10 <= qoe.avg_qp <= 51
        assert 15 < qoe.avg_fps < 33

    def test_starved_at_very_low_bandwidth(self):
        qoe = run_session(limit=0.3, viewers=60.0).qoe
        assert qoe.stall_ratio > 0.2 or qoe.join_time_s > 10.0

    def test_playback_meta_shape(self):
        artifacts = run_session()
        meta = artifacts.playback_meta
        assert meta["protocol"] == "rtmp"
        assert "avg_stall_s" in meta  # RTMP reports stall durations
        assert "n_stalls" in meta


class TestHlsSession:
    def test_higher_latency_than_rtmp(self):
        rtmp = run_session(protocol=DeliveryProtocol.RTMP, viewers=300.0).qoe
        hls = run_session(protocol=DeliveryProtocol.HLS, viewers=300.0).qoe
        assert hls.delivery_latency_s > 5 * rtmp.delivery_latency_s
        assert hls.delivery_latency_s > 2.0
        assert hls.playback_latency_s > rtmp.playback_latency_s

    def test_hls_meta_has_no_stall_durations(self):
        artifacts = run_session(protocol=DeliveryProtocol.HLS, viewers=300.0)
        assert artifacts.playback_meta["protocol"] == "hls"
        assert "avg_stall_s" not in artifacts.playback_meta

    def test_hls_playback_works(self):
        qoe = run_session(protocol=DeliveryProtocol.HLS, viewers=300.0).qoe
        assert qoe.playback_s > 15.0
        assert qoe.consistent()


class TestChatTraffic:
    def test_chat_on_downloads_avatars(self):
        artifacts = run_session(viewers=200.0, chat_ui_on=True)
        assert artifacts.avatar_requests > 5
        assert artifacts.avatar_bytes > 100_000

    def test_chat_off_no_avatars_but_messages_flow(self):
        artifacts = run_session(viewers=200.0, chat_ui_on=False)
        assert artifacts.avatar_requests == 0
        assert artifacts.chat_messages > 5

    def test_chat_on_multiplies_traffic(self):
        off = run_session(viewers=400.0, chat_ui_on=False)
        on = run_session(viewers=400.0, chat_ui_on=True)
        assert on.total_down_bytes > 2 * off.total_down_bytes

    def test_avatar_cache_reduces_traffic(self):
        uncached = run_session(viewers=400.0, cache_avatars=False)
        cached = run_session(viewers=400.0, cache_avatars=True)
        assert cached.avatar_bytes < uncached.avatar_bytes

    def test_duplicate_downloads_without_cache(self):
        # The paper: "some pictures were downloaded multiple times, which
        # indicates that the app does not cache them."
        artifacts = run_session(viewers=800.0, watch=40.0, cache_avatars=False)
        assert artifacts.avatar_requests > 10


class TestDeterminism:
    def test_same_seed_same_qoe(self):
        a = run_session(seed=9).qoe
        b = run_session(seed=9).qoe
        assert a.join_time_s == b.join_time_s
        assert a.stall_count == b.stall_count
        assert a.delivery_latency_samples == b.delivery_latency_samples

    def test_devices_differ_in_fps_only_mechanism(self):
        s3 = run_session(seed=9, device=GALAXY_S3).qoe
        s4 = run_session(seed=9, device=GALAXY_S4).qoe
        assert s3.avg_fps < s4.avg_fps
        assert s3.join_time_s == pytest.approx(s4.join_time_s, abs=0.5)


def test_capture_recorded_traffic():
    artifacts = run_session()
    assert artifacts.capture.total_bytes(direction="down") > 500_000
    assert artifacts.capture.total_bytes(direction="up") > 1_000
