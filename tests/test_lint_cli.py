"""The ``python -m repro.lint`` CLI: exit codes, JSON schema, baseline
workflow, and the seeded-violation acceptance check."""

import json
import os
import subprocess
import sys
import textwrap

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def run_cli(*args, cwd=None):
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        cwd=cwd or REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


@pytest.fixture
def mini_repo(tmp_path):
    """A tiny checkout with one hermetic netsim module."""
    (tmp_path / "pyproject.toml").write_text("[project]\nname = 'mini'\n")
    pkg = tmp_path / "src" / "repro" / "netsim"
    pkg.mkdir(parents=True)
    (pkg / "link.py").write_text(textwrap.dedent("""
        def transit(loop, delay):
            return loop.now + delay
    """))
    (tmp_path / "tests").mkdir()
    return tmp_path


def seed_violation(mini_repo):
    (mini_repo / "src" / "repro" / "netsim" / "link.py").write_text(
        textwrap.dedent("""
            import time

            def transit(loop, delay):
                return time.time() + delay
        """)
    )


def test_clean_tree_exits_zero(mini_repo):
    proc = run_cli("--root", str(mini_repo))
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 finding(s)" in proc.stdout


def test_seeded_violation_exits_nonzero(mini_repo):
    seed_violation(mini_repo)
    proc = run_cli("--root", str(mini_repo))
    assert proc.returncode == 1
    assert "D101" in proc.stdout


def test_json_format_schema(mini_repo):
    seed_violation(mini_repo)
    proc = run_cli("--root", str(mini_repo), "--format", "json")
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert payload["version"] == 1
    assert payload["ok"] is False
    assert payload["counts"]["new"] == 1
    finding = payload["findings"][0]
    for key in ("rule", "severity", "path", "line", "col", "message",
                "fingerprint", "baselined"):
        assert key in finding
    assert finding["rule"] == "D101"
    assert finding["path"] == "src/repro/netsim/link.py"
    assert finding["baselined"] is False


def test_write_baseline_then_clean_then_stale(mini_repo):
    seed_violation(mini_repo)
    baseline = mini_repo / "lint-baseline.json"

    # Accept the debt: the run goes green.
    proc = run_cli("--root", str(mini_repo), "--write-baseline")
    assert proc.returncode == 0
    assert baseline.exists()
    proc = run_cli("--root", str(mini_repo))
    assert proc.returncode == 0, proc.stdout
    assert "1 baselined" in proc.stdout

    # A *second* violation is still caught.
    extra = mini_repo / "src" / "repro" / "netsim" / "extra.py"
    extra.write_text("import time\nNOW = time.time()\n")
    proc = run_cli("--root", str(mini_repo))
    assert proc.returncode == 1
    extra.unlink()

    # Fix the original violation: entry goes stale but doesn't fail.
    (mini_repo / "src" / "repro" / "netsim" / "link.py").write_text(
        "def transit(loop, delay):\n    return loop.now + delay\n"
    )
    proc = run_cli("--root", str(mini_repo))
    assert proc.returncode == 0
    assert "stale baseline entry" in proc.stdout

    # Refresh drops the stale entry.
    proc = run_cli("--root", str(mini_repo), "--write-baseline")
    assert proc.returncode == 0
    payload = json.loads(baseline.read_text())
    assert payload["findings"] == []


def test_no_baseline_flag_ignores_baseline(mini_repo):
    seed_violation(mini_repo)
    run_cli("--root", str(mini_repo), "--write-baseline")
    proc = run_cli("--root", str(mini_repo), "--no-baseline")
    assert proc.returncode == 1


def test_pragma_silences_seeded_violation(mini_repo):
    (mini_repo / "src" / "repro" / "netsim" / "link.py").write_text(
        textwrap.dedent("""
            import time

            def transit(loop, delay):
                return time.time() + delay  # lint: disable=D101
        """)
    )
    proc = run_cli("--root", str(mini_repo))
    assert proc.returncode == 0
    assert "1 suppressed by pragma" in proc.stdout


def test_list_rules(mini_repo):
    proc = run_cli("--list-rules")
    assert proc.returncode == 0
    for rule_id in ("D101", "D102", "D103", "D104", "D105",
                    "O201", "O202", "O203", "L301", "L302", "L303",
                    "F401", "F402",
                    "U501", "U502", "U503", "U504", "U505",
                    "R601", "R602", "R603",
                    "P701", "P702", "P703"):
        assert rule_id in proc.stdout


def test_explicit_path_argument(mini_repo):
    seed_violation(mini_repo)
    proc = run_cli("--root", str(mini_repo), "src/repro/netsim/link.py")
    assert proc.returncode == 1
    proc = run_cli("--root", str(mini_repo), "tests")
    assert proc.returncode == 0


def test_real_repo_cli_is_clean():
    """Acceptance criterion: python -m repro.lint exits 0 on the tree."""
    proc = run_cli("--format", "json")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["ok"] is True
    assert payload["counts"]["new"] == 0


# ---------------------------------------------------------------- sarif

_SARIF_LEVELS = {"none", "note", "warning", "error"}


def _assert_valid_sarif(payload):
    """Structural check against the SARIF 2.1.0 schema subset we emit."""
    assert payload["version"] == "2.1.0"
    assert "sarif-schema-2.1.0.json" in payload["$schema"]
    assert isinstance(payload["runs"], list) and payload["runs"]
    for run in payload["runs"]:
        driver = run["tool"]["driver"]
        assert driver["name"]
        rule_ids = []
        for rule in driver.get("rules", []):
            assert rule["id"]
            assert rule["shortDescription"]["text"]
            assert rule["defaultConfiguration"]["level"] in _SARIF_LEVELS
            rule_ids.append(rule["id"])
        assert len(rule_ids) == len(set(rule_ids))
        for result in run.get("results", []):
            assert result["message"]["text"]
            assert result["level"] in _SARIF_LEVELS
            if "ruleIndex" in result:
                assert rule_ids[result["ruleIndex"]] == result["ruleId"]
            for location in result.get("locations", []):
                physical = location["physicalLocation"]
                assert physical["artifactLocation"]["uri"]
                assert physical["region"]["startLine"] >= 1


def test_sarif_format_is_structurally_valid(mini_repo):
    seed_violation(mini_repo)
    proc = run_cli("--root", str(mini_repo), "--format", "sarif")
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    _assert_valid_sarif(payload)
    results = payload["runs"][0]["results"]
    assert [r["ruleId"] for r in results] == ["D101"]
    location = results[0]["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "src/repro/netsim/link.py"


def test_sarif_round_trips_json_findings(mini_repo):
    """Acceptance criterion: SARIF carries the same findings (and the
    same fingerprints) as --format json."""
    seed_violation(mini_repo)
    (mini_repo / "src" / "repro" / "netsim" / "extra.py").write_text(
        "def tx(wire_bytes, rate_bps):\n    return wire_bytes / rate_bps\n"
    )
    json_proc = run_cli("--root", str(mini_repo), "--format", "json")
    sarif_proc = run_cli("--root", str(mini_repo), "--format", "sarif")
    json_payload = json.loads(json_proc.stdout)
    sarif_payload = json.loads(sarif_proc.stdout)
    _assert_valid_sarif(sarif_payload)

    from repro.lint.sarif import FINGERPRINT_KEY
    json_view = {
        (f["rule"], f["path"], f["line"], f["fingerprint"])
        for f in json_payload["findings"]
    }
    sarif_view = {
        (
            r["ruleId"],
            r["locations"][0]["physicalLocation"]["artifactLocation"]["uri"],
            r["locations"][0]["physicalLocation"]["region"]["startLine"],
            r["partialFingerprints"][FINGERPRINT_KEY],
        )
        for r in sarif_payload["runs"][0]["results"]
    }
    assert json_view == sarif_view
    assert len(json_view) == 2  # D101 + U504


def test_sarif_marks_baselined_findings_suppressed(mini_repo):
    seed_violation(mini_repo)
    run_cli("--root", str(mini_repo), "--write-baseline")
    proc = run_cli("--root", str(mini_repo), "--format", "sarif")
    assert proc.returncode == 0
    payload = json.loads(proc.stdout)
    results = payload["runs"][0]["results"]
    assert len(results) == 1
    assert results[0]["suppressions"][0]["kind"] == "external"


def test_output_flag_writes_file(mini_repo):
    seed_violation(mini_repo)
    out = mini_repo / "lint.sarif"
    proc = run_cli("--root", str(mini_repo), "--format", "sarif",
                   "--output", str(out))
    assert proc.returncode == 1  # exit code still reflects findings
    assert proc.stdout == ""
    _assert_valid_sarif(json.loads(out.read_text()))


# ---------------------------------------------------------------- disable-file

def test_disable_file_pragma_suppresses_whole_file(mini_repo):
    (mini_repo / "src" / "repro" / "netsim" / "link.py").write_text(
        textwrap.dedent("""
            # lint: disable-file=D101
            import time

            def transit(loop, delay):
                return time.time() + delay

            def arrive(loop):
                return time.time()
        """).lstrip()
    )
    proc = run_cli("--root", str(mini_repo))
    assert proc.returncode == 0, proc.stdout
    assert "2 suppressed by pragma" in proc.stdout
    assert "note: stale pragma" not in proc.stdout


def test_stale_disable_file_pragma_is_reported(mini_repo):
    (mini_repo / "src" / "repro" / "netsim" / "link.py").write_text(
        "# lint: disable-file=D101\n"
        "def transit(loop, delay):\n"
        "    return loop.now + delay\n"
    )
    proc = run_cli("--root", str(mini_repo))
    assert proc.returncode == 0
    assert "note: stale pragma disable-file=D101" in proc.stdout
    json_proc = run_cli("--root", str(mini_repo), "--format", "json")
    payload = json.loads(json_proc.stdout)
    assert payload["counts"]["stale_pragmas"] == 1
    assert payload["stale_pragmas"][0]["rule"] == "D101"


def test_indented_disable_file_text_is_inert(mini_repo):
    # A docstring example of the pragma must not disable anything.
    (mini_repo / "src" / "repro" / "netsim" / "link.py").write_text(
        textwrap.dedent('''
            """Docs showing the pragma:

                # lint: disable-file=D101
            """
            import time

            def transit(loop, delay):
                return time.time() + delay
        ''').lstrip()
    )
    proc = run_cli("--root", str(mini_repo))
    assert proc.returncode == 1
    assert "D101" in proc.stdout
    assert "note: stale pragma" not in proc.stdout
