"""Tests for repro.faults: seeded fault injection across the stack.

Covers the three layers (retry policies, link impairments, fault plans),
their integration points (Link.send, ApiServer, delivery, players,
sessions), and the tentpole acceptance criteria: a faulted study run is
bit-identical across repeats, and the stalls-vs-loss sweep is monotone.
"""

import pickle

import pytest

from repro.core.config import StudyConfig
from repro.core.session import SessionSetup, ViewingSession
from repro.core.study import AutomatedViewingStudy
from repro.faults import (
    FaultPlan,
    FlapSchedule,
    LinkImpairment,
    LossProcess,
    LossSpec,
    OutageSpec,
    RetryPolicy,
    RetrySchedule,
)
from repro.faults.retry import CRAWLER_RETRY, FAULT_RETRY, HLS_TRANSPORT_RETRY
from repro.netsim.events import EventLoop
from repro.netsim.topology import Network
from repro.service.selection import DeliveryProtocol
from repro.util.rng import child_rng
from repro.util.units import MBPS

from test_core_session import make_broadcast


# ----------------------------------------------------------- retry policy

class TestRetryPolicy:
    def test_exponential_growth_with_cap(self):
        policy = RetryPolicy(base_delay_s=1.0, factor=2.0, max_delay_s=5.0,
                             max_attempts=6)
        delays = [policy.delay_for(i) for i in range(1, 7)]
        assert delays == [1.0, 2.0, 4.0, 5.0, 5.0, 5.0]

    def test_budget_exhaustion_returns_none(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.delay_for(3) is not None
        assert policy.delay_for(4) is None

    def test_jitter_stays_within_fraction(self):
        policy = RetryPolicy(base_delay_s=2.0, factor=1.0, max_delay_s=2.0,
                             max_attempts=100, jitter_frac=0.25)
        rng = child_rng(1, "jitter-test")
        delays = [policy.delay_for(i, rng) for i in range(1, 101)]
        assert all(1.5 <= d <= 2.5 for d in delays)
        assert len(set(delays)) > 10  # actually jittered

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=-1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter_frac=1.5)

    def test_schedule_counts_attempts_and_honours_deadline(self):
        policy = RetryPolicy(base_delay_s=1.0, factor=1.0, max_delay_s=1.0,
                             max_attempts=100, deadline_s=3.5)
        schedule = RetrySchedule(policy, started_at=10.0)
        delays = []
        now = 10.0
        while True:
            delay = schedule.next_delay(now)
            if delay is None:
                break
            delays.append(delay)
            now += delay
        # 1 s per retry against a 3.5 s deadline: three fit, not four.
        assert len(delays) == 3
        assert schedule.attempts == 4  # the refusal consumed an attempt

    def test_shared_policies_are_sane(self):
        # First crawler retry matches the historical constant backoff.
        assert CRAWLER_RETRY.delay_for(1) == 2.0
        # HLS default reproduces the old fixed 1 s error re-poll.
        assert HLS_TRANSPORT_RETRY.delay_for(1) == 1.0
        assert HLS_TRANSPORT_RETRY.delay_for(60) == 1.0
        assert FAULT_RETRY.deadline_s is not None

    def test_policies_pickle(self):
        for policy in (CRAWLER_RETRY, HLS_TRANSPORT_RETRY, FAULT_RETRY):
            assert pickle.loads(pickle.dumps(policy)) == policy


# ------------------------------------------------------------ loss models

class TestLossModels:
    def test_bernoulli_rate(self):
        process = LossProcess(LossSpec(rate=0.2), child_rng(3, "bern"))
        losses = sum(process.sample_lost() for _ in range(20_000))
        assert losses == pytest.approx(4000, rel=0.1)

    def test_gilbert_bursts(self):
        spec = LossSpec(model="gilbert", p_good_to_bad=0.05,
                        p_bad_to_good=0.2, bad_loss=0.8)
        process = LossProcess(spec, child_rng(3, "ge"))
        outcomes = [process.sample_lost() for _ in range(20_000)]
        assert 0.0 < sum(outcomes) / len(outcomes) < 0.5
        # Losses cluster: P(loss | previous loss) >> marginal rate.
        follow = sum(1 for a, b in zip(outcomes, outcomes[1:]) if a and b)
        marginal = sum(outcomes) / len(outcomes)
        assert follow / max(1, sum(outcomes[:-1])) > 2.0 * marginal

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            LossSpec(model="teleport")
        with pytest.raises(ValueError):
            LossSpec(rate=1.0)
        with pytest.raises(ValueError):
            LossSpec(rate=0.5, recovery_s=-0.1)


# ------------------------------------------------------- outages and flaps

class TestOutages:
    def test_windows_never_overlap_and_stay_in_horizon(self):
        spec = OutageSpec(rate_per_s=0.2, min_down_s=0.5, max_down_s=3.0)
        windows = spec.windows(child_rng(9, "win"), 0.0, 120.0)
        assert windows
        previous_end = float("-inf")
        for window_start, window_end in windows:
            assert window_start >= previous_end
            assert 0.5 <= window_end - window_start <= 3.0
            assert window_start < 120.0
            previous_end = window_end

    def test_flap_schedule_defers_into_gaps(self):
        flaps = FlapSchedule([(1.0, 2.0), (5.0, 6.5)])
        assert flaps.defer(0.5) == 0.5
        assert flaps.defer(1.5) == 2.0
        assert flaps.defer(6.0) == 6.5
        assert flaps.down_at(5.1)
        assert not flaps.down_at(3.0)

    def test_flap_schedule_rejects_overlap(self):
        with pytest.raises(ValueError):
            FlapSchedule([(1.0, 3.0), (2.0, 4.0)])


# -------------------------------------------------------------- fault plan

class TestFaultPlan:
    def test_parse_describe_round_trip(self):
        spec = ("loss=0.02,jitter=0.005,flap=0.01:0.5:2,"
                "ingest=0.02:1:3,api5xx=0.05")
        plan = FaultPlan.parse(spec)
        assert FaultPlan.parse(plan.describe()) == plan

    def test_parse_retry_override(self):
        plan = FaultPlan.parse("api5xx=0.1,retry=0.5:2:4")
        assert plan.retry.base_delay_s == 0.5
        assert plan.retry.max_attempts == 4
        assert plan.retry.max_delay_s == pytest.approx(4.0)

    def test_parse_gilbert(self):
        plan = FaultPlan.parse("loss=ge:0.02:0.3:0.5")
        assert plan.loss.model == "gilbert"
        assert plan.loss.p_good_to_bad == 0.02

    def test_parse_none_and_errors(self):
        assert FaultPlan.parse("none").empty
        assert FaultPlan.parse("").empty
        with pytest.raises(ValueError):
            FaultPlan.parse("warp=9")

    def test_plan_pickles(self):
        plan = FaultPlan.parse("loss=0.01,ingest=0.02:1:3")
        assert pickle.loads(pickle.dumps(plan)) == plan


# --------------------------------------------------------- link impairment

class TestLinkImpairment:
    @staticmethod
    def _run_link(impairment):
        from repro.netsim.connection import Connection, Message

        loop = EventLoop()
        net = Network(loop)
        a, b = net.host("a"), net.host("b")
        net.duplex(a, b, rate_bps=10 * MBPS, delay_s=0.02)
        net.link_between(a, b).impairment = impairment
        fwd, rev = net.duplex_paths("a", "b")
        arrivals = []
        conn = Connection(loop, fwd, rev,
                          on_message=lambda m, t: arrivals.append((m.payload, t)))
        for index in range(200):
            conn.send(Message(payload=index, nbytes=1400))
        loop.run()
        return arrivals

    def test_impaired_link_preserves_fifo_and_delivers_everything(self):
        impairment = LinkImpairment(
            child_rng(4, "impair"),
            loss=LossSpec(rate=0.1),
            jitter_s=0.01,
            flaps=FlapSchedule([(0.05, 0.4)]),
        )
        arrivals = self._run_link(impairment)
        assert [p for p, _ in arrivals] == list(range(200))
        times = [t for _, t in arrivals]
        assert times == sorted(times)
        assert impairment.packets_lost > 0
        assert impairment.flap_defer_s > 0.0
        assert impairment.jitter_added_s > 0.0

    def test_loss_only_delays_relative_to_clean_link(self):
        clean = self._run_link(None)
        lossy = self._run_link(
            LinkImpairment(child_rng(4, "impair2"), loss=LossSpec(rate=0.1))
        )
        assert lossy[-1][1] > clean[-1][1]
        for (_, clean_t), (_, lossy_t) in zip(clean, lossy):
            assert lossy_t >= clean_t - 1e-12


# ------------------------------------------------------- faulted sessions

FULL_PLAN = FaultPlan.parse(
    "loss=0.02,jitter=0.005,flap=0.01:0.5:2,ingest=0.02:1:3,api5xx=0.05"
)


def run_faulted_session(protocol=DeliveryProtocol.RTMP, plan=FULL_PLAN,
                        seed=5, watch=30.0, limit=100.0):
    from repro.automation.devices import GALAXY_S4

    setup = SessionSetup(
        broadcast=make_broadcast(seed=seed),
        age_at_join=600.0,
        protocol=protocol,
        device=GALAXY_S4,
        bandwidth_limit_mbps=limit,
        watch_seconds=watch,
        seed=seed,
        faults=plan,
    )
    return ViewingSession(setup).run()


class TestFaultedSessions:
    def test_rtmp_session_survives_full_plan(self):
        qoe = run_faulted_session().qoe
        assert qoe.consistent()
        assert qoe.playback_s > 0.0

    def test_hls_session_survives_full_plan(self):
        qoe = run_faulted_session(protocol=DeliveryProtocol.HLS).qoe
        assert qoe.consistent()

    def test_ingest_outage_reconnects_rtmp(self):
        plan = FaultPlan.parse("ingest=0.1:1:2")  # ~3 outages in 30 s
        qoe = run_faulted_session(plan=plan, seed=11).qoe
        assert qoe.disconnects >= 1
        assert qoe.reconnects == qoe.disconnects  # failover always accepts
        assert any(e.startswith("ingest-outage@") for e in qoe.fault_events)

    def test_no_failover_waits_out_the_outage(self):
        import dataclasses

        plan = dataclasses.replace(FaultPlan.parse("ingest=0.1:1:2"),
                                   ingest_failover=False)
        with_failover = run_faulted_session(
            plan=FaultPlan.parse("ingest=0.1:1:2"), seed=11).qoe
        without = run_faulted_session(plan=plan, seed=11).qoe
        assert without.disconnects >= 1
        # Waiting for the primary costs more playback than failing over.
        assert without.playback_s <= with_failover.playback_s

    def test_api_errors_are_retried_transparently(self):
        plan = FaultPlan.parse("api5xx=0.5")
        artifacts = run_faulted_session(plan=plan, seed=13)
        qoe = artifacts.qoe
        assert qoe.api_retries >= 1
        assert qoe.consistent()

    def test_faults_off_matches_plan_none(self):
        baseline = run_session_pickle(None)
        empty = run_session_pickle(FaultPlan.parse("none"))
        # An all-disabled plan draws nothing and changes nothing except
        # the retry wrapper's bookkeeping-free path.
        assert pickle.loads(baseline).stalls == pickle.loads(empty).stalls


def run_session_pickle(plan):
    artifacts = run_faulted_session(plan=plan, seed=5)
    return pickle.dumps(artifacts.qoe)


# ------------------------------------------------ acceptance: determinism

class TestFaultedDeterminism:
    def test_faulted_session_bit_identical_across_runs(self):
        first = run_faulted_session(seed=7)
        second = run_faulted_session(seed=7)
        assert pickle.dumps(first.qoe) == pickle.dumps(second.qoe)
        first_trace = [
            (r.timestamp, r.seq, r.payload_bytes, r.is_ack, r.direction)
            for r in first.capture.records
        ]
        second_trace = [
            (r.timestamp, r.seq, r.payload_bytes, r.is_ack, r.direction)
            for r in second.capture.records
        ]
        assert first_trace == second_trace

    def test_faulted_study_bit_identical_across_runs(self):
        def run():
            study = AutomatedViewingStudy(
                StudyConfig(seed=31, faults=FULL_PLAN)
            )
            return study.run_batch(3)

        assert pickle.dumps(run()) == pickle.dumps(run())


# ----------------------------------------------- acceptance: monotonicity

class TestStallsVsLoss:
    def test_sweep_monotone_nondecreasing(self):
        from repro.experiments import fig3_loss
        from repro.experiments.common import Workbench

        workbench = Workbench(seed=2016, sweep_sessions_per_limit=6)
        result = fig3_loss.run(workbench)
        rates = sorted(result.stall_counts)
        assert rates == [0.0, 0.01, 0.05]
        means = [result.mean_stalls(rate) for rate in rates]
        assert means[0] <= means[1] <= means[2]
        assert result.monotone_nondecreasing()
        assert "monotonicity" in result.render()
