"""Unit tests for repro.util.units."""

from repro.util import units


def test_bit_byte_roundtrip():
    assert units.bits_to_bytes(units.bytes_to_bits(123)) == 123


def test_rate_constants_ratios():
    assert units.MBPS == 1000 * units.KBPS
    assert units.GBPS == 1000 * units.MBPS


def test_format_bitrate_units():
    assert units.format_bitrate(500) == "500 bps"
    assert units.format_bitrate(2_500) == "2.5 kbps"
    assert units.format_bitrate(2_000_000) == "2.00 Mbps"
    assert units.format_bitrate(3_200_000_000) == "3.20 Gbps"


def test_format_bytes_units():
    assert units.format_bytes(12) == "12 B"
    assert units.format_bytes(2_500) == "2.5 kB"
    assert units.format_bytes(3_000_000) == "3.00 MB"
    assert units.format_bytes(4_200_000_000) == "4.20 GB"


def test_format_duration_boundaries():
    assert units.format_duration(0.02) == "20 ms"
    assert units.format_duration(5.5) == "5.5 s"
    assert units.format_duration(240) == "4.0 min"
    assert units.format_duration(7200) == "2.0 h"
    assert units.format_duration(2 * units.DAY) == "2.0 d"


def test_format_duration_negative():
    assert units.format_duration(-3.0) == "-3.0 s"
