"""Unit and property tests for ECDF and boxplot summaries."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.empirical import Ecdf, ecdf, five_number_summary

finite_floats = st.floats(min_value=-1e9, max_value=1e9, allow_nan=False)


def test_ecdf_basic_fractions():
    e = Ecdf([1.0, 2.0, 2.0, 4.0])
    assert e(0.5) == 0.0
    assert e(1.0) == 0.25
    assert e(2.0) == 0.75
    assert e(4.0) == 1.0
    assert e(100.0) == 1.0


def test_ecdf_requires_samples():
    with pytest.raises(ValueError):
        Ecdf([])


def test_ecdf_quantile_interpolation():
    e = Ecdf([0.0, 10.0])
    assert e.quantile(0.5) == 5.0
    assert e.quantile(0.0) == 0.0
    assert e.quantile(1.0) == 10.0


def test_ecdf_quantile_validation():
    with pytest.raises(ValueError):
        Ecdf([1.0]).quantile(1.5)


def test_ecdf_points_monotone():
    e = ecdf([3.0, 1.0, 2.0])
    pts = e.points()
    assert pts == [(1.0, 1 / 3), (2.0, 2 / 3), (3.0, 1.0)]


def test_ecdf_series_grid():
    e = ecdf([1.0, 2.0, 3.0, 4.0])
    series = e.series([0, 2, 5])
    assert series == [(0, 0.0), (2, 0.5), (5, 1.0)]


@given(st.lists(finite_floats, min_size=1, max_size=200))
def test_ecdf_is_monotone_nondecreasing(samples):
    e = Ecdf(samples)
    xs = sorted(samples)
    values = [e(x) for x in xs]
    assert all(a <= b for a, b in zip(values, values[1:]))
    assert values[-1] == 1.0


@given(st.lists(finite_floats, min_size=1, max_size=200), st.floats(0, 1))
def test_ecdf_quantile_within_range(samples, q):
    e = Ecdf(samples)
    v = e.quantile(q)
    assert e.min <= v <= e.max


def test_five_number_summary_simple():
    s = five_number_summary([1, 2, 3, 4, 5])
    assert s.median == 3
    assert s.q1 == 2
    assert s.q3 == 4
    assert s.low_whisker == 1
    assert s.high_whisker == 5
    assert s.n_outliers == 0
    assert s.n == 5


def test_five_number_summary_outliers():
    s = five_number_summary([1, 2, 3, 4, 5, 100])
    assert s.n_outliers == 1
    assert s.high_whisker == 5


def test_five_number_summary_requires_samples():
    with pytest.raises(ValueError):
        five_number_summary([])


@given(st.lists(finite_floats, min_size=1, max_size=100))
def test_five_number_summary_ordering_invariant(samples):
    s = five_number_summary(samples)
    assert s.low_whisker <= s.q1 <= s.median <= s.q3 <= s.high_whisker
    assert 0 <= s.n_outliers <= s.n


def test_row_shape():
    s = five_number_summary([1.0, 2.0, 3.0])
    assert len(s.row()) == 5
    assert s.iqr == s.q3 - s.q1
