"""Integration tests for the automated-viewing study harness."""

import pytest

from repro.core.config import StudyConfig
from repro.core.qoe import SessionQoE, stall_ratio
from repro.core.study import AutomatedViewingStudy
from repro.service.selection import DeliveryProtocol


@pytest.fixture(scope="module")
def small_dataset():
    study = AutomatedViewingStudy(StudyConfig(seed=2016))
    return study, study.run_batch(14)


def test_stall_ratio_definition():
    assert stall_ratio(0.0, 60.0) == 0.0
    assert stall_ratio(15.0, 45.0) == 0.25
    assert stall_ratio(0.0, 0.0) == 0.0
    with pytest.raises(ValueError):
        stall_ratio(-1.0, 10.0)


def test_sessions_complete_and_consistent(small_dataset):
    _, ds = small_dataset
    assert len(ds.sessions) == 14
    for s in ds.sessions:
        assert s.consistent(), (s.join_time_s, s.playback_s, s.total_stall_s)
        assert s.watch_seconds == 60.0


def test_both_protocols_observed(small_dataset):
    _, ds = small_dataset
    protocols = {s.protocol for s in ds.sessions}
    assert "rtmp" in protocols  # HLS may be absent in a tiny sample


def test_devices_alternate(small_dataset):
    _, ds = small_dataset
    devices = {s.device for s in ds.sessions}
    assert devices == {"galaxy-s3", "galaxy-s4"}


def test_hls_sessions_come_from_popular_broadcasts(small_dataset):
    _, ds = small_dataset
    for s in ds.sessions:
        if s.protocol == "hls":
            assert s.avg_viewers >= 50
        else:
            assert s.avg_viewers < 150


def test_rtmp_delivery_latency_fast(small_dataset):
    _, ds = small_dataset
    rtmp = [s for s in ds.by_protocol("rtmp") if s.delivery_latency_s is not None]
    assert rtmp
    fast = sum(1 for s in rtmp if s.delivery_latency_s < 0.5)
    assert fast / len(rtmp) > 0.7


def test_dataset_filters(small_dataset):
    _, ds = small_dataset
    assert len(ds.by_limit(100.0)) == len(ds.sessions)
    assert len(ds.by_device("galaxy-s3")) + len(ds.by_device("galaxy-s4")) == len(
        ds.sessions
    )


def test_forced_protocol_batches():
    study = AutomatedViewingStudy(StudyConfig(seed=77))
    ds = study.run_batch(4, forced_protocol=DeliveryProtocol.HLS)
    assert len(ds.sessions) == 4
    assert all(s.protocol == "hls" for s in ds.sessions)


def test_sweep_produces_all_limits():
    study = AutomatedViewingStudy(StudyConfig(seed=88))
    sweep = study.run_bandwidth_sweep(sessions_per_limit=2, limits_mbps=(1.0, 100.0))
    assert set(sweep) == {1.0, 100.0}
    assert all(len(ds.sessions) == 2 for ds in sweep.values())
    for limit, ds in sweep.items():
        assert all(s.bandwidth_limit_mbps == limit for s in ds.sessions)


def test_low_bandwidth_hurts_qoe():
    study = AutomatedViewingStudy(StudyConfig(seed=99))
    starved = study.run_batch(6, bandwidth_limit_mbps=0.5)
    healthy = study.run_batch(6, bandwidth_limit_mbps=100.0)

    def mean_ratio(ds):
        sessions = ds.sessions
        return sum(s.stall_ratio for s in sessions) / len(sessions)

    assert mean_ratio(starved) > mean_ratio(healthy) + 0.05


def test_study_deterministic():
    a = AutomatedViewingStudy(StudyConfig(seed=123)).run_batch(3)
    b = AutomatedViewingStudy(StudyConfig(seed=123)).run_batch(3)
    assert [s.broadcast_id for s in a.sessions] == [s.broadcast_id for s in b.sessions]
    assert [s.join_time_s for s in a.sessions] == [s.join_time_s for s in b.sessions]
