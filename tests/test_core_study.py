"""Integration tests for the automated-viewing study harness."""

import pytest

from repro import obs
from repro.core.config import StudyConfig
from repro.core.qoe import SessionQoE, stall_ratio
from repro.core.study import AutomatedViewingStudy, StudyDataset
from repro.service.selection import DeliveryProtocol


@pytest.fixture(scope="module")
def small_dataset():
    study = AutomatedViewingStudy(StudyConfig(seed=2016))
    return study, study.run_batch(14)


def test_stall_ratio_definition():
    assert stall_ratio(0.0, 60.0) == 0.0
    assert stall_ratio(15.0, 45.0) == 0.25
    assert stall_ratio(0.0, 0.0) == 0.0
    with pytest.raises(ValueError):
        stall_ratio(-1.0, 10.0)


def test_sessions_complete_and_consistent(small_dataset):
    _, ds = small_dataset
    assert len(ds.sessions) == 14
    for s in ds.sessions:
        assert s.consistent(), (s.join_time_s, s.playback_s, s.total_stall_s)
        assert s.watch_seconds == 60.0


def test_both_protocols_observed(small_dataset):
    _, ds = small_dataset
    protocols = {s.protocol for s in ds.sessions}
    assert "rtmp" in protocols  # HLS may be absent in a tiny sample


def test_devices_alternate(small_dataset):
    _, ds = small_dataset
    devices = {s.device for s in ds.sessions}
    assert devices == {"galaxy-s3", "galaxy-s4"}


def test_hls_sessions_come_from_popular_broadcasts(small_dataset):
    _, ds = small_dataset
    for s in ds.sessions:
        if s.protocol == "hls":
            assert s.avg_viewers >= 50
        else:
            assert s.avg_viewers < 150


def test_rtmp_delivery_latency_fast(small_dataset):
    _, ds = small_dataset
    rtmp = [s for s in ds.by_protocol("rtmp") if s.delivery_latency_s is not None]
    assert rtmp
    fast = sum(1 for s in rtmp if s.delivery_latency_s < 0.5)
    assert fast / len(rtmp) > 0.7


def test_dataset_filters(small_dataset):
    _, ds = small_dataset
    assert len(ds.by_limit(100.0)) == len(ds.sessions)
    assert len(ds.by_device("galaxy-s3")) + len(ds.by_device("galaxy-s4")) == len(
        ds.sessions
    )


def test_forced_protocol_batches():
    study = AutomatedViewingStudy(StudyConfig(seed=77))
    ds = study.run_batch(4, forced_protocol=DeliveryProtocol.HLS)
    assert len(ds.sessions) == 4
    assert all(s.protocol == "hls" for s in ds.sessions)


def test_sweep_produces_all_limits():
    study = AutomatedViewingStudy(StudyConfig(seed=88))
    sweep = study.run_bandwidth_sweep(sessions_per_limit=2, limits_mbps=(1.0, 100.0))
    assert set(sweep) == {1.0, 100.0}
    assert all(len(ds.sessions) == 2 for ds in sweep.values())
    for limit, ds in sweep.items():
        assert all(s.bandwidth_limit_mbps == limit for s in ds.sessions)


def test_low_bandwidth_hurts_qoe():
    study = AutomatedViewingStudy(StudyConfig(seed=99))
    starved = study.run_batch(6, bandwidth_limit_mbps=0.5)
    healthy = study.run_batch(6, bandwidth_limit_mbps=100.0)

    def mean_ratio(ds):
        sessions = ds.sessions
        return sum(s.stall_ratio for s in sessions) / len(sessions)

    assert mean_ratio(starved) > mean_ratio(healthy) + 0.05


def test_by_limit_matches_computed_floats():
    # Regression: by_limit used exact float ==, so a session recorded at
    # a computed sweep point (0.1 * 3 != 0.3) was silently dropped from
    # its limit bucket.
    computed = 0.1 * 3
    assert computed != 0.3  # the pre-fix failure mode only exists if so
    session = SessionQoE(
        broadcast_id="b", protocol="rtmp", device="galaxy-s3",
        bandwidth_limit_mbps=computed, watch_seconds=60.0,
        join_time_s=1.0, playback_s=59.0,
    )
    ds = StudyDataset(sessions=[session])
    assert ds.by_limit(0.3) == [session]
    assert ds.by_limit(1.0) == []


def test_batch_shortfall_warns_and_is_surfaced():
    # Regression: a batch whose teleport retry budget ran out silently
    # returned a short dataset; now it warns, counts, and records the
    # shortfall on the dataset.
    study = AutomatedViewingStudy(StudyConfig(seed=5))
    study.world.teleport = lambda rng, exclude=None: None  # dead world
    with obs.session(metrics=True, tracing=False, profiling=False) as telemetry:
        with pytest.warns(RuntimeWarning, match="shortfall"):
            ds = study.run_batch(3)
        counter = telemetry.metrics.get("study_batch_shortfall_total", limit="100")
        assert counter is not None and counter.value == 3.0
    assert ds.sessions == []
    assert ds.shortfall == 3


def test_extend_accumulates_shortfall():
    a = StudyDataset(shortfall=2)
    a.extend(StudyDataset(shortfall=1))
    assert a.shortfall == 3


def test_study_deterministic():
    a = AutomatedViewingStudy(StudyConfig(seed=123)).run_batch(3)
    b = AutomatedViewingStudy(StudyConfig(seed=123)).run_batch(3)
    assert [s.broadcast_id for s in a.sessions] == [s.broadcast_id for s in b.sessions]
    assert [s.join_time_s for s in a.sessions] == [s.join_time_s for s in b.sessions]
