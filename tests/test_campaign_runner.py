"""Campaign runner semantics (repro.campaign.runner + the CLI).

The determinism contract under test: a campaign's final artifacts —
``dataset.pkl`` bytes, merged ``metrics.prom``/``metrics.json`` — are a
pure function of the spec.  Cache hits, corrupted-blob recomputes, a
different campaign directory, and cell-level parallelism must all
reproduce the cold serial bytes exactly.
"""

import os
import pickle

import pytest

from repro.campaign.__main__ import main as campaign_main
from repro.campaign.runner import (
    DATASET_NAME,
    METRICS_JSON_NAME,
    METRICS_PROM_NAME,
    PROGRESS_NAME,
    SPEC_NAME,
    CampaignRunner,
)
from repro.campaign.spec import (
    POPULATION,
    CampaignSpec,
    cell_key,
    plan_cells,
    resolve_config,
)
from repro.campaign.store import CampaignStore

#: Small but real: two seeds x two limits, one session each.
SPEC = CampaignSpec(
    seeds=(2016, 2017),
    limits_mbps=(0.5, 100.0),
    sessions_per_cell=1,
    watch_seconds=4.0,
    scale=0.02,
)

ARTIFACTS = (DATASET_NAME, METRICS_PROM_NAME, METRICS_JSON_NAME)


def _run(path, spec=SPEC, workers=1):
    store = CampaignStore(str(path))
    runner = CampaignRunner(store, spec, workers=workers)
    return store, runner.run()


def _artifact_bytes(path):
    return {name: CampaignStore(str(path)).read_artifact(name)
            for name in ARTIFACTS}


@pytest.fixture(scope="module")
def cold(tmp_path_factory):
    """One cold serial run; every identity test compares against it."""
    path = tmp_path_factory.mktemp("campaign-cold")
    _store, summary = _run(path)
    return path, summary, _artifact_bytes(path)


# -------------------------------------------------------------------- plan

def test_plan_is_deterministic_and_seed_major():
    cells = plan_cells(SPEC)
    assert [(c.seed, c.bandwidth_limit_mbps) for c in cells] == [
        (2016, 0.5), (2016, 100.0), (2017, 0.5), (2017, 100.0)
    ]
    assert [cell_key(c) for c in cells] == \
        [cell_key(c) for c in plan_cells(SPEC)]


def test_resolve_config_pins_workers_to_one():
    config = resolve_config(SPEC, 2016)
    assert config.workers == 1
    assert config.seed == 2016
    assert config.watch_seconds == SPEC.watch_seconds


def test_spec_round_trips_through_json():
    restored = CampaignSpec.from_json(SPEC.to_json())
    assert restored == SPEC
    population = CampaignSpec(kind=POPULATION, seeds=(7,), viewers=5000)
    assert CampaignSpec.from_json(population.to_json()) == population


# ---------------------------------------------------------------- cold run

def test_cold_run_executes_every_cell(cold):
    _path, summary, artifacts = cold
    assert summary.planned == 4
    assert summary.executed == 4
    assert summary.memoized == 0
    assert summary.corrupt_recomputed == 0
    for name in ARTIFACTS:
        assert artifacts[name], name


def test_dataset_payload_shape(cold):
    _path, _summary, artifacts = cold
    payload = pickle.loads(artifacts[DATASET_NAME])
    assert payload["kind"] == "sweep"
    assert len(payload["cells"]) == 4
    first = payload["cells"][0]
    assert first["seed"] == 2016
    assert first["bandwidth_limit_mbps"] == 0.5
    assert len(first["dataset"].sessions) == 1


def test_progress_and_spec_artifacts_written(cold):
    path, _summary, _artifacts = cold
    store = CampaignStore(str(path))
    progress = store.read_artifact(PROGRESS_NAME).decode("utf-8")
    assert "campaign_complete 1" in progress
    assert "campaign_cells_planned 4" in progress
    assert CampaignSpec.from_json(
        store.read_artifact(SPEC_NAME).decode("utf-8")
    ) == SPEC


# -------------------------------------------------------------- memoization

def test_rerun_is_a_pure_cache_hit_with_identical_bytes(cold):
    path, _summary, reference = cold
    _store, summary = _run(path)
    assert summary.memoized == 4
    assert summary.executed == 0
    assert _artifact_bytes(path) == reference


def test_fresh_directory_reproduces_the_same_bytes(cold, tmp_path):
    _path, _summary, reference = cold
    _store, summary = _run(tmp_path / "other-dir")
    assert summary.executed == 4
    assert _artifact_bytes(tmp_path / "other-dir") == reference


def test_parallel_cells_reproduce_serial_bytes(cold, tmp_path):
    _path, _summary, reference = cold
    _store, summary = _run(tmp_path / "parallel", workers=2)
    assert summary.executed == 4
    assert _artifact_bytes(tmp_path / "parallel") == reference


def test_corrupted_blob_is_recomputed_not_served(cold, tmp_path):
    _path, _summary, reference = cold
    path = tmp_path / "rot"
    store, _summary2 = _run(path)
    address = sorted(store.completed_cells().values())[0]
    blob_path = store._blob_path(address)
    with open(blob_path, "r+b") as blob_file:
        blob_file.seek(10)
        blob_file.write(b"BITROT")
    _store3, summary = _run(path)
    assert summary.corrupt_recomputed == 1
    assert summary.executed == 1
    assert summary.memoized == 3
    assert _artifact_bytes(path) == reference


def test_spec_change_reuses_overlapping_cells(cold, tmp_path):
    path = tmp_path / "grow"
    _run(path)
    wider = CampaignSpec(
        seeds=SPEC.seeds,
        limits_mbps=(0.5, 2.0, 100.0),  # one new limit per seed
        sessions_per_cell=SPEC.sessions_per_cell,
        watch_seconds=SPEC.watch_seconds,
        scale=SPEC.scale,
    )
    _store, summary = _run(path, spec=wider)
    assert summary.planned == 6
    assert summary.memoized == 4   # the original grid is a cache hit
    assert summary.executed == 2   # only the new limit runs


# ------------------------------------------------------------------ status

def test_status_on_an_untouched_directory(tmp_path):
    runner = CampaignRunner(CampaignStore(str(tmp_path / "new")), SPEC)
    status = runner.status()
    assert status.planned == 4
    assert status.pending == 4
    assert status.memoized == 0
    assert not status.complete
    assert [state for _label, _key, state in status.cells] == ["pending"] * 4


def test_status_after_completion(cold):
    path, _summary, _artifacts = cold
    status = CampaignRunner(CampaignStore(str(path)), SPEC).status()
    assert status.complete
    assert status.memoized == 4
    assert {state for _l, _k, state in status.cells} == {"memoized"}


def test_status_counts_extra_journal_cells(cold, tmp_path):
    path = tmp_path / "extra"
    _run(path)
    narrower = CampaignSpec(
        seeds=(2016,), limits_mbps=(0.5,), sessions_per_cell=1,
        watch_seconds=4.0, scale=0.02,
    )
    status = CampaignRunner(CampaignStore(str(path)), narrower).status()
    assert status.planned == 1
    assert status.memoized == 1
    assert status.extra_journal == 3


# ------------------------------------------------------------------ CLI

CLI_GRID = ["--seeds", "2016,2017", "--limits", "0.5,100",
            "--sessions", "1", "--watch", "4", "--scale", "0.02"]


def test_cli_run_status_gc_round_trip(cold, tmp_path, capsys):
    _path, _summary, reference = cold
    campaign_dir = str(tmp_path / "cli")
    assert campaign_main(["run", "--campaign", campaign_dir] + CLI_GRID) == 0
    out = capsys.readouterr().out
    assert "4 cell(s)" in out and "4 executed" in out
    assert _artifact_bytes(campaign_dir) == reference

    # status reads the stored spec — no grid flags needed.
    assert campaign_main(["status", "--campaign", campaign_dir]) == 0
    out = capsys.readouterr().out
    assert "complete:        yes" in out
    assert "memoized" in out

    assert campaign_main(["gc", "--campaign", campaign_dir]) == 0
    out = capsys.readouterr().out
    assert "0 unreferenced blob(s)" in out
    assert _artifact_bytes(campaign_dir) == reference


def test_cli_locked_directory_exits_2(tmp_path, capsys):
    campaign_dir = str(tmp_path / "locked")
    holder = CampaignStore(campaign_dir)
    holder.acquire_lock()
    try:
        code = campaign_main(["run", "--campaign", campaign_dir] + CLI_GRID)
    finally:
        holder.close()
    assert code == 2
    assert "locked" in capsys.readouterr().err


# -------------------------------------------------------------- population

def test_population_campaign_runs_and_memoizes(tmp_path):
    spec = CampaignSpec(
        kind=POPULATION, seeds=(7,), viewers=2000, sample_budget=2,
        watch_seconds=4.0, scale=0.02,
    )
    path = tmp_path / "pop"
    _store, summary = _run(path, spec=spec)
    assert summary.planned == 1 and summary.executed == 1
    payload = pickle.loads(_artifact_bytes(path)[DATASET_NAME])
    assert payload["kind"] == "population"
    cell = payload["cells"][0]
    assert cell["viewers"] == 2000
    assert cell["totals"]  # cohort aggregates ship with population cells
    _store2, rerun = _run(path, spec=spec)
    assert rerun.memoized == 1 and rerun.executed == 0
