"""Byte-fidelity end-to-end: real bytes over the wire, real dissection.

These tests run the delivery paths with actual serialized bytes in each
packet and verify that the capture-side parsers (the wireshark/libav
stand-ins) recover the exact media — the strongest cross-check between
the producing and measuring halves of the reproduction.
"""

import random

import pytest

from repro.capture.inspector import inspect_frames
from repro.media.frames import AudioFrame, EncodedFrame
from repro.netsim.connection import Connection
from repro.netsim.events import EventLoop
from repro.netsim.topology import Network
from repro.netsim.trace import TraceCapture
from repro.protocols import mpegts, rtmp
from repro.service.broadcast import sample_broadcast
from repro.service.delivery import HlsOrigin, LiveSourceDriver, RtmpDelivery
from repro.service.geo import POPULATION_CENTERS, GeoPoint
from repro.protocols.http import HttpRequest
from repro.util.units import MBPS


def make_broadcast(seed=11):
    b = sample_broadcast(random.Random(seed), 0.0, GeoPoint(48.9, 2.3),
                         POPULATION_CENTERS[9])
    b.mean_viewers = 20.0
    b.duration_s = 3600.0
    return b


class TestRtmpByteFidelity:
    def _run(self, watch=10.0):
        loop = EventLoop()
        net = Network(loop)
        server, phone = net.host("ingest"), net.host("phone")
        net.duplex(server, phone, rate_bps=50 * MBPS, delay_s=0.02)
        capture = TraceCapture(capture_payload=True)
        capture.tap_link(net.link_between(server, phone), "down")
        fwd, rev = net.duplex_paths("ingest", "phone")
        received = []
        conn = Connection(loop, fwd, rev,
                          on_message=lambda m, t: received.append(m.payload))
        driver = LiveSourceDriver(loop, make_broadcast(), age_at_join=5.0,
                                  horizon_s=watch, generate_from=2.0)
        push = rtmp.RtmpPushSession(conn, byte_fidelity=True)
        delivery = RtmpDelivery(push, driver)
        driver.start()
        delivery.start()
        loop.run_until(watch)
        return capture, received

    def test_chunk_stream_reconstructs_from_capture(self):
        capture, received = self._run()
        # Reassemble the byte stream from the captured packet chunks.
        records = sorted(capture.data_records(), key=lambda r: r.seq)
        stream_bytes = b"".join(r.chunk for r in records if r.chunk is not None)
        assert stream_bytes
        parser = rtmp.ChunkParser()
        messages = parser.feed(stream_bytes)
        media = [rtmp.media_frame_of(m) for m in messages
                 if m.msg_type in (rtmp.RtmpMessageType.AUDIO,
                                   rtmp.RtmpMessageType.VIDEO)]
        sent_video = [f for f in received if isinstance(f, EncodedFrame)]
        got_video = [f for f in media if isinstance(f, EncodedFrame)]
        # Capture may trail the app by in-flight packets; compare prefix.
        assert len(got_video) >= len(sent_video)
        for got, sent in zip(got_video, sent_video):
            assert got.nbytes == sent.nbytes
            assert got.frame_type == sent.frame_type
            assert got.pts == pytest.approx(sent.pts)

    def test_dissected_media_inspectable(self):
        capture, _ = self._run(watch=12.0)
        records = sorted(capture.data_records(), key=lambda r: r.seq)
        stream_bytes = b"".join(r.chunk for r in records if r.chunk is not None)
        parser = rtmp.ChunkParser()
        frames = [rtmp.media_frame_of(m) for m in parser.feed(stream_bytes)
                  if m.msg_type in (rtmp.RtmpMessageType.AUDIO,
                                    rtmp.RtmpMessageType.VIDEO)]
        video = [f for f in frames if isinstance(f, EncodedFrame)]
        audio = [f for f in frames if isinstance(f, AudioFrame)]
        report = inspect_frames(video, audio)
        assert 100e3 < report.video_bitrate_bps < 1.5e6
        assert report.gop_kind in ("IBP", "IP", "I")
        assert report.n_audio_frames == len(audio)


class TestHlsByteFidelity:
    def test_served_segments_demux_cleanly(self):
        loop = EventLoop()
        driver = LiveSourceDriver(loop, make_broadcast(seed=12), age_at_join=30.0,
                                  horizon_s=10.0, generate_from=14.0)
        origin = HlsOrigin(loop, driver, byte_fidelity=True)
        driver.start()
        origin.start()
        loop.run_until(10.0)
        playlist = origin.window.playlist()
        assert playlist.entries
        for entry in playlist.entries:
            response = origin.handle(HttpRequest("GET", f"/{entry.uri}"), "c")
            result = mpegts.demux_segment(response.data)
            assert result.continuity_errors == 0
            assert len(result.video_frames) == len(response.payload.video_frames)
            # Byte sizes on the wire match the segment's media payload.
            media_bytes = sum(f.nbytes for f in result.video_frames) + sum(
                a.nbytes for a in result.audio_frames
            )
            assert len(response.data) > media_bytes  # container overhead
            assert len(response.data) < media_bytes * 1.35
