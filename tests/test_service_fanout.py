"""Tests for encode-once RTMP fan-out: N viewers, one driver/encoder."""

import random

from repro.media.frames import EncodedFrame
from repro.netsim.connection import Connection
from repro.netsim.events import EventLoop
from repro.netsim.topology import Network
from repro.protocols.rtmp import RtmpPushSession
from repro.service.broadcast import sample_broadcast
from repro.service.delivery import LiveSourceDriver, RtmpFanout, UplinkModel
from repro.service.geo import POPULATION_CENTERS, GeoPoint


def make_broadcast(seed=1, mean_viewers=10.0, duration=3600.0):
    b = sample_broadcast(random.Random(seed), 0.0, GeoPoint(40.0, -74.0),
                         POPULATION_CENTERS[0])
    b.mean_viewers = mean_viewers
    b.duration_s = duration
    return b


def wire_fanout(n_viewers=3, slow_first_bps=None, backpressure_bytes=256 * 1024):
    """One ingest server fanning one broadcast out to ``n_viewers`` phones.

    ``slow_first_bps`` throttles viewer 0's downlink so backpressure has
    someone to act on.
    """
    loop = EventLoop()
    net = Network(loop)
    server = net.host("ingest")
    conns, received = [], []
    for i in range(n_viewers):
        phone = net.host(f"phone{i}")
        rate = slow_first_bps if (slow_first_bps is not None and i == 0) else 50e6
        net.duplex(server, phone, rate_bps=rate, delay_s=0.02)
        fwd, rev = net.duplex_paths("ingest", f"phone{i}")
        bucket = []
        conns.append(Connection(
            loop, fwd, rev,
            on_message=lambda m, t, b=bucket: b.append((m.payload, t)),
        ))
        received.append(bucket)
    # Jitter-free, outage-free uplink: frames reach the ingest in capture
    # order, so any index gap a viewer sees is a backpressure shed.
    driver = LiveSourceDriver(
        loop, make_broadcast(), age_at_join=10.0, horizon_s=10.0,
        generate_from=7.0,
        uplink=UplinkModel(jitter_s=0.0, outage_rate_per_s=0.0),
    )
    fanout = RtmpFanout(driver, backpressure_bytes=backpressure_bytes)
    clients = [fanout.attach(RtmpPushSession(conn)) for conn in conns]
    driver.start()
    return loop, driver, fanout, clients, received


def video_frames(bucket):
    return [f for f, _ in bucket if isinstance(f, EncodedFrame)]


class TestRtmpFanout:
    def test_viewers_share_the_same_encoded_frames(self):
        """Encode-once: every viewer receives the *same* frame objects —
        the encoder ran exactly once for N viewers."""
        loop, driver, fanout, clients, received = wire_fanout(n_viewers=3)
        for client in clients:
            client.start()
        loop.run_until(8.0)
        videos = [video_frames(bucket) for bucket in received]
        assert all(len(v) > 100 for v in videos)
        for a, b, c in zip(*videos):
            assert a is b and b is c

    def test_every_viewer_joins_on_a_keyframe(self):
        loop, _, _, clients, received = wire_fanout(n_viewers=2)
        for client in clients:
            client.start()
        loop.run_until(1.0)
        for bucket in received:
            video = video_frames(bucket)
            assert video and video[0].frame_type == "I"

    def test_unstarted_client_receives_nothing(self):
        loop, _, _, clients, received = wire_fanout(n_viewers=2)
        clients[0].start()
        loop.run_until(5.0)
        assert received[0]
        assert received[1] == []

    def test_slow_viewer_sheds_while_fast_viewer_keeps_everything(self):
        loop, _, _, clients, received = wire_fanout(
            n_viewers=2, slow_first_bps=150e3, backpressure_bytes=24 * 1024,
        )
        for client in clients:
            client.start()
        loop.run_until(9.0)
        slow, fast = clients
        assert slow.frames_dropped > 0
        assert fast.frames_dropped == 0
        assert slow.frames_delivered < fast.frames_delivered

    def test_shed_resumes_on_a_keyframe(self):
        loop, _, _, clients, received = wire_fanout(
            n_viewers=2, slow_first_bps=150e3, backpressure_bytes=24 * 1024,
        )
        for client in clients:
            client.start()
        loop.run_until(9.0)
        video = video_frames(received[0])
        assert len(video) > 1
        for prev, cur in zip(video, video[1:]):
            if cur.index != prev.index + 1:  # a shed gap
                assert cur.frame_type == "I"

    def test_detach_stops_delivery(self):
        loop, _, fanout, clients, received = wire_fanout(n_viewers=2)
        for client in clients:
            client.start()
        loop.run_until(3.0)
        fanout.detach(clients[1])
        fanout.detach(clients[1])  # idempotent
        count_at_detach = len(received[1])
        loop.run_until(8.0)
        assert len(received[0]) > len(received[1])
        # Frames already inside the network still land; nothing new is fed.
        assert clients[1].frames_delivered <= count_at_detach + 64
