"""Tests for the R-QP model and the ABR controller."""

import random

import pytest

from repro.media.rate_control import (
    QP_MAX,
    QP_MIN,
    QP_REF,
    RateController,
    bits_for_frame,
    qp_for_bits,
)


def test_qp_down_six_doubles_bits():
    low = bits_for_frame("P", QP_REF, 1.0)
    high = bits_for_frame("P", QP_REF - 6, 1.0)
    assert high == pytest.approx(2 * low)


def test_frame_type_ordering():
    i = bits_for_frame("I", 30, 1.0)
    p = bits_for_frame("P", 30, 1.0)
    b = bits_for_frame("B", 30, 1.0)
    assert i > p > b


def test_bits_scale_with_complexity():
    assert bits_for_frame("P", 30, 2.0) == pytest.approx(2 * bits_for_frame("P", 30, 1.0))


def test_bits_validation():
    with pytest.raises(ValueError):
        bits_for_frame("X", 30, 1.0)
    with pytest.raises(ValueError):
        bits_for_frame("P", 5, 1.0)
    with pytest.raises(ValueError):
        bits_for_frame("P", 30, 0.0)


def test_qp_for_bits_inverts_model():
    bits = bits_for_frame("P", 33.5, 1.3)
    assert qp_for_bits("P", bits, 1.3) == pytest.approx(33.5)


def test_qp_for_bits_clamps():
    assert qp_for_bits("P", 1e12, 1.0) == QP_MIN
    assert qp_for_bits("P", 1e-6, 1.0) == QP_MAX


def test_controller_validation():
    with pytest.raises(ValueError):
        RateController(target_bps=0, fps=30)
    with pytest.raises(ValueError):
        RateController(target_bps=1e5, fps=0)


def simulate(target_bps, complexity, frames=3000, fps=30.0, seed=0):
    """Run the controller over an IBP-like type sequence and return
    (achieved bps, mean qp)."""
    rng = random.Random(seed)
    rc = RateController(target_bps=target_bps, fps=fps)
    total_bits = 0.0
    qp_sum = 0.0
    for i in range(frames):
        pos = i % 36
        ftype = "I" if pos == 0 else ("B" if pos % 2 == 1 else "P")
        c = max(0.05, rng.gauss(complexity, complexity * 0.1))
        qp_sum += rc.qp
        total_bits += rc.encode_frame(ftype, c)
    return total_bits / (frames / fps), qp_sum / frames


def test_controller_converges_to_target():
    achieved, _ = simulate(300_000.0, complexity=1.0)
    assert achieved == pytest.approx(300_000.0, rel=0.10)


def test_harder_content_encoded_at_higher_qp():
    _, qp_easy = simulate(300_000.0, complexity=0.4)
    _, qp_hard = simulate(300_000.0, complexity=1.8)
    assert qp_hard > qp_easy + 3


def test_higher_target_lower_qp():
    _, qp_low_rate = simulate(200_000.0, complexity=1.0)
    _, qp_high_rate = simulate(800_000.0, complexity=1.0)
    assert qp_high_rate < qp_low_rate - 5


def test_qp_stays_in_valid_range():
    rc = RateController(target_bps=50_000.0, fps=30)
    for i in range(500):
        rc.encode_frame("I", 4.0)  # pathological: all-I, very hard content
        assert QP_MIN <= rc.qp <= QP_MAX
