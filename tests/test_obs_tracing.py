"""Unit tests for sim-time tracing spans."""

import json

from repro.obs.tracing import Tracer


def test_begin_end_records_sim_duration():
    tracer = Tracer()
    span = tracer.begin("session", sim_time=0.0, protocol="rtmp")
    tracer.end(span, sim_time=62.0)
    assert span.sim_duration == 62.0
    assert span.wall_duration is not None and span.wall_duration >= 0.0
    assert span.attrs == {"protocol": "rtmp"}
    assert tracer.spans == [span]


def test_nesting_assigns_parents():
    tracer = Tracer()
    outer = tracer.begin("outer", sim_time=0.0)
    inner = tracer.begin("inner", sim_time=1.0)
    tracer.end(inner, sim_time=2.0)
    tracer.end(outer, sim_time=3.0)
    assert inner.parent_id == outer.span_id
    assert outer.parent_id is None
    # Completion order: inner ends first.
    assert [s.name for s in tracer.spans] == ["inner", "outer"]
    assert tracer.children_of(outer) == [inner]


def test_record_retroactive_spans_under_open_parent():
    tracer = Tracer()
    root = tracer.begin("session", sim_time=0.0)
    join = tracer.record("session.join", 0.0, 2.5)
    stall = tracer.record("session.stall", 10.0, 12.0, parent=root)
    tracer.end(root, sim_time=62.0)
    assert join.parent_id == root.span_id
    assert stall.parent_id == root.span_id
    assert join.sim_duration == 2.5
    assert stall.wall_duration == 0.0


def test_jsonl_round_trip():
    tracer = Tracer()
    span = tracer.begin("session", sim_time=1.0, broadcast_id="abc")
    tracer.record("session.join", 1.0, 3.0)
    tracer.end(span, sim_time=10.0)
    lines = tracer.to_jsonl().splitlines()
    assert len(lines) == 2
    decoded = [json.loads(line) for line in lines]
    by_name = {d["name"]: d for d in decoded}
    assert by_name["session"]["attrs"] == {"broadcast_id": "abc"}
    assert by_name["session"]["sim_duration"] == 9.0
    assert by_name["session.join"]["parent_id"] == by_name["session"]["span_id"]


def test_find_by_name():
    tracer = Tracer()
    tracer.record("a", 0.0, 1.0)
    tracer.record("b", 0.0, 1.0)
    tracer.record("a", 1.0, 2.0)
    assert len(tracer.find("a")) == 2
    assert len(tracer.find("b")) == 1


def test_span_cap_drops_overflow():
    tracer = Tracer(max_spans=2)
    tracer.record("x", 0.0, 1.0)
    tracer.record("x", 0.0, 1.0)
    tracer.record("x", 0.0, 1.0)
    assert len(tracer.spans) == 2
    assert tracer.dropped == 1
