"""Identity properties of population-scale worlds.

The mesoscale layer (:mod:`repro.world`) advertises two guarantees:

* **anchored fidelity** — a cohort member promoted by the stratified
  sampler runs through the unchanged per-packet simulator, so expanding
  it inside the sharded world is bit-identical to running the same
  :class:`~repro.core.session.SessionSetup` standalone;
* **shard/worker invariance** — every RNG draw is keyed by broadcaster
  index, so shard count and worker count are invisible in the sampled
  dataset, the cohort totals, and the merged telemetry.

These tests sweep seeds, fault plans, worker counts, and shard counts,
comparing by pickled bytes — any float, ordering, or RNG divergence
fails loudly (mirroring ``test_fastpath_identity.py``).
"""

import pickle

import pytest

from repro import obs
from repro.core.config import StudyConfig
from repro.core.popstudy import PopulationStudy, setup_for
from repro.core.session import ViewingSession
from repro.faults import FaultPlan
from repro.netsim import fastpath
from repro.service.ingest import IngestPool
from repro.util.rng import child_rng
from repro.world.popularity import PopulationParameters

SEEDS = list(range(61, 71))  # 10 seeds

FAULT_SPEC = "loss=0.02,jitter=0.005,ingest=0.03:1:2,api5xx=0.1"

#: Tiny but non-degenerate world: a few dozen broadcasters, both
#: protocols represented, and a handful of promoted members per run.
WORLD_VIEWERS = 300
SAMPLE_BUDGET = 5
WATCH_SECONDS = 4.0


def _config(seed: int, faulted: bool, workers: int = 1,
            metrics: bool = False) -> StudyConfig:
    return StudyConfig(
        seed=seed,
        watch_seconds=WATCH_SECONDS,
        workers=workers,
        metrics_enabled=metrics,
        faults=FaultPlan.parse(FAULT_SPEC) if faulted else None,
    )


def _world(seed: int, faulted: bool, workers: int = 1, shards=None,
           metrics: bool = False):
    study = PopulationStudy(
        _config(seed, faulted, workers, metrics),
        PopulationParameters(viewers=WORLD_VIEWERS,
                             sample_budget=SAMPLE_BUDGET),
    )
    return study.run(shards=shards)


def _result_bytes(result) -> tuple:
    """Byte-level fingerprint of a population run.

    Sessions and requests are pickled one by one: a whole-list pickle
    also encodes which objects happen to be *shared* between entries,
    and the process-pool path legitimately loses that sharing when
    results cross the process boundary."""
    return (
        [pickle.dumps(q) for q in result.sampled.sessions],
        result.sampled.avatar_bytes,
        result.sampled.down_bytes,
        [pickle.dumps(r) for r in result.world.requests],
        pickle.dumps(result.world.totals),
        (result.world.broadcasters, result.world.live_broadcasters,
         result.world.cohorts),
    )


class TestExpansionIdentitySweep:
    """Promoted cohort member == the same SessionSetup run standalone."""

    @pytest.mark.parametrize("faulted", [False, True],
                             ids=["pristine", "faulted"])
    @pytest.mark.parametrize("seed", SEEDS)
    def test_expansion_equals_standalone(self, seed, faulted):
        result = _world(seed, faulted)
        assert result.world.requests, "world promoted no members"
        assert len(result.sampled.sessions) == len(result.world.requests)
        faults = FaultPlan.parse(FAULT_SPEC) if faulted else None
        ingest = IngestPool(child_rng(seed, "ingest-pool"))
        previous = fastpath.enabled()
        fastpath.set_enabled(True)
        try:
            for index, request in enumerate(result.world.requests):
                artifacts = ViewingSession(
                    setup_for(seed, request, faults), ingest=ingest
                ).run()
                assert (pickle.dumps(artifacts.qoe)
                        == pickle.dumps(result.sampled.sessions[index]))
                assert (artifacts.avatar_bytes
                        == result.sampled.avatar_bytes[index])
                assert (artifacts.total_down_bytes
                        == result.sampled.down_bytes[index])
        finally:
            fastpath.set_enabled(previous)


class TestShardAndWorkerInvariance:
    """1 shard == N shards == M workers, byte for byte."""

    @pytest.mark.parametrize("faulted", [False, True],
                             ids=["pristine", "faulted"])
    def test_shard_and_worker_counts_agree(self, faulted):
        seed = 2016
        reference = _result_bytes(_world(seed, faulted, workers=1, shards=1))
        assert _result_bytes(
            _world(seed, faulted, workers=1, shards=6)) == reference
        for workers in (2, 4):
            assert _result_bytes(
                _world(seed, faulted, workers=workers)) == reference

    def test_merged_metric_snapshots_agree(self):
        seed = 2016
        snapshots = {}
        for workers in (1, 2, 4):
            telemetry = obs.activate(obs.Telemetry(
                metrics=True, tracing=False, profiling=False,
                causes=False, health=False,
            ))
            try:
                _world(seed, faulted=False, workers=workers, metrics=True)
                snapshots[workers] = telemetry.metrics.snapshot()
            finally:
                obs.deactivate()
        assert snapshots[2] == snapshots[1]
        assert snapshots[4] == snapshots[1]

    def test_world_mode_is_scoped_to_the_run(self):
        previous = fastpath.enabled()
        _world(7, faulted=False, workers=1)
        assert fastpath.enabled() == previous
