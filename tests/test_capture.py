"""Tests for the mitm proxy, reconstruction and inspection pipeline."""

import random

import pytest

from repro.capture.inspector import classify_gop, inspect_frames, qp_bitrate_points
from repro.capture.mitm import Flow, InlineScript, MitmProxy, RecordingScript
from repro.capture.reconstruct import (
    classify_flows,
    extract_hls_segments,
    extract_rtmp_frames,
    reassemble_flows,
)
from repro.core.session import SessionSetup, ViewingSession
from repro.media.content import CONTENT_PROFILES, ContentProcess
from repro.media.encoder import EncoderSettings, VideoEncoder
from repro.media.frames import EncodedFrame
from repro.protocols.http import HttpRequest, HttpResponse, HttpStatus
from repro.service.selection import DeliveryProtocol
from tests.test_core_session import make_broadcast, run_session


class TestMitmProxy:
    def upstream(self, request, client):
        return HttpResponse(HttpStatus.OK, json_body={"path": request.path})

    def test_passthrough(self):
        proxy = MitmProxy(self.upstream)
        handler = proxy.handler()
        resp = handler(HttpRequest("GET", "/x"), "c1")
        assert resp.json_body == {"path": "/x"}
        assert len(proxy.flows) == 1
        assert proxy.flows[0].response is resp

    def test_request_rewrite(self):
        class Rewrite(InlineScript):
            def request(self, flow):
                return HttpRequest("GET", "/rewritten")

        proxy = MitmProxy(self.upstream)
        proxy.addon(Rewrite())
        resp = proxy.handler()(HttpRequest("GET", "/original"), "c1")
        assert resp.json_body == {"path": "/rewritten"}

    def test_short_circuit_response(self):
        class Block(InlineScript):
            def request(self, flow):
                return HttpResponse(HttpStatus.TOO_MANY_REQUESTS, json_body={})

        proxy = MitmProxy(self.upstream)
        proxy.addon(Block())
        resp = proxy.handler()(HttpRequest("GET", "/x"), "c1")
        assert resp.status == HttpStatus.TOO_MANY_REQUESTS

    def test_response_replacement(self):
        class Replace(InlineScript):
            def response(self, flow):
                return HttpResponse(HttpStatus.OK, json_body={"replaced": True})

        proxy = MitmProxy(self.upstream)
        proxy.addon(Replace())
        resp = proxy.handler()(HttpRequest("GET", "/x"), "c1")
        assert resp.json_body == {"replaced": True}

    def test_recording_script_filters(self):
        proxy = MitmProxy(self.upstream)
        recorder = RecordingScript(path_filter=lambda p: p.lower().endswith("meta"))
        proxy.addon(recorder)
        handler = proxy.handler()
        handler(HttpRequest("GET", "/playbackMeta"), "c1")
        handler(HttpRequest("GET", "/other"), "c1")
        assert len(recorder.requests) == 1
        assert recorder.requests[0]["path"] == "/playbackMeta"


@pytest.fixture(scope="module")
def rtmp_artifacts():
    return run_session(watch=20.0, seed=31)


@pytest.fixture(scope="module")
def hls_artifacts():
    return run_session(protocol=DeliveryProtocol.HLS, viewers=300.0,
                       watch=25.0, seed=32)


class TestReconstruction:
    def test_reassembles_flows(self, rtmp_artifacts):
        streams = reassemble_flows(rtmp_artifacts.capture)
        assert streams
        down = [s for s in streams.values() if s.direction == "down"]
        assert down
        assert all(s.total_payload_bytes > 0 for s in down)

    def test_classify_flows(self, rtmp_artifacts):
        streams = reassemble_flows(rtmp_artifacts.capture)
        buckets = classify_flows(streams)
        assert buckets["rtmp"]
        assert buckets["http"]      # API + avatar traffic
        assert buckets["websocket"]  # chat

    def test_extract_rtmp_frames(self, rtmp_artifacts):
        streams = reassemble_flows(rtmp_artifacts.capture)
        media = [
            s for s in streams.values()
            if s.direction == "down"
            and any(a.get("protocol") == "rtmp" and a.get("kind") in ("video", "audio")
                    for _, a in s.messages)
        ]
        assert media
        frames = extract_rtmp_frames(media[0])
        video = [f for _, f in frames if isinstance(f, EncodedFrame)]
        assert len(video) > 100
        times = [t for t, _ in frames]
        assert times == sorted(times)

    def test_extract_hls_segments(self, hls_artifacts):
        streams = reassemble_flows(hls_artifacts.capture)
        all_segments = []
        for stream in streams.values():
            if stream.direction == "down":
                all_segments.extend(extract_hls_segments(stream))
        assert len(all_segments) >= 3
        for _, segment in all_segments:
            assert segment.video_frames

    def test_capture_rate_accounting(self, rtmp_artifacts):
        streams = reassemble_flows(rtmp_artifacts.capture)
        rtmp = classify_flows(streams)["rtmp"]
        rate = max(s.average_rate_bps() for s in rtmp)
        assert 100_000 < rate < 2_000_000  # a plausible video stream


class TestInspector:
    def _frames(self, gop="IBP", seed=1, duration=30.0):
        from repro.media.encoder import GopPattern

        settings = EncoderSettings(target_bps=300_000.0, gop=GopPattern(gop))
        content = ContentProcess(CONTENT_PROFILES["indoor_event"], random.Random(seed))
        return VideoEncoder(settings, content, random.Random(seed + 1)).encode_all(duration)

    def test_classify_gop(self):
        assert classify_gop(["I", "B", "P", "B", "P"]) == "IBP"
        assert classify_gop(["I", "P", "P"]) == "IP"
        assert classify_gop(["I", "I"]) == "I"
        assert classify_gop(["X"]) == "unknown"
        assert classify_gop([]) == "unknown"

    def test_inspect_recovers_encoder_facts(self):
        frames = self._frames()
        report = inspect_frames(frames)
        assert report.video_bitrate_bps == pytest.approx(300_000, rel=0.2)
        assert report.gop_kind == "IBP"
        assert 30 <= report.i_frame_period <= 42
        assert 20 <= report.average_fps <= 31
        assert 10 <= report.average_qp <= 51

    def test_inspect_ip_only(self):
        report = inspect_frames(self._frames(gop="IP"))
        assert report.gop_kind == "IP"

    def test_missing_frames_detected(self):
        from repro.media.encoder import GopPattern

        settings = EncoderSettings(target_bps=300_000.0, drop_rate=0.3)
        content = ContentProcess(CONTENT_PROFILES["indoor_event"], random.Random(9))
        frames = VideoEncoder(settings, content, random.Random(10)).encode_all(20.0)
        assert inspect_frames(frames).has_missing_frames

    def test_requires_two_frames(self):
        with pytest.raises(ValueError):
            inspect_frames(self._frames()[:1])

    def test_qp_bitrate_points(self):
        reports = [inspect_frames(self._frames(seed=s)) for s in (1, 2)]
        points = qp_bitrate_points(reports)
        assert len(points) == 2
        assert all(b > 0 and 10 <= q <= 51 for b, q in points)

    def test_audio_bitrate(self):
        from repro.media.audio import AacEncoderModel

        video = self._frames()
        audio = AacEncoderModel(random.Random(3), nominal_bps=64_000.0).encode_all(30.0)
        report = inspect_frames(video, audio)
        assert report.audio_bitrate_bps == pytest.approx(64_000, rel=0.2)
        assert report.n_audio_frames == len(audio)


def test_cross_validation_capture_vs_player(rtmp_artifacts):
    """The capture pipeline and the player must agree on media facts."""
    streams = reassemble_flows(rtmp_artifacts.capture)
    media = max(
        (s for s in streams.values() if s.direction == "down"),
        key=lambda s: s.total_payload_bytes,
    )
    frames = extract_rtmp_frames(media)
    video = [f for _, f in frames if isinstance(f, EncodedFrame)]
    report = inspect_frames(video)
    qoe = rtmp_artifacts.qoe
    assert report.video_bitrate_bps == pytest.approx(qoe.video_bitrate_bps, rel=0.05)
    assert report.average_qp == pytest.approx(qoe.avg_qp, abs=1.0)
