"""Tests for M3U8 playlists, the live window, and WebSocket framing."""

import json

import pytest

from repro.protocols.hls import LiveWindow, MediaPlaylist, PlaylistEntry
from repro.protocols.websocket import (
    OPCODE_CLOSE,
    OPCODE_TEXT,
    chat_message_json,
    decode_frames,
    encode_frame,
    text_frame_size,
)


class TestMediaPlaylist:
    def playlist(self):
        return MediaPlaylist(
            target_duration_s=4.0,
            media_sequence=17,
            entries=[
                PlaylistEntry("seg17.ts", 3.6, 17),
                PlaylistEntry("seg18.ts", 3.6, 18),
                PlaylistEntry("seg19.ts", 4.1, 19),
            ],
        )

    def test_render_contains_required_tags(self):
        text = self.playlist().render()
        assert text.startswith("#EXTM3U")
        assert "#EXT-X-TARGETDURATION:" in text
        assert "#EXT-X-MEDIA-SEQUENCE:17" in text
        assert text.count("#EXTINF:") == 3
        assert "#EXT-X-ENDLIST" not in text

    def test_render_parse_roundtrip(self):
        original = self.playlist()
        parsed = MediaPlaylist.parse(original.render())
        assert parsed.media_sequence == 17
        assert [e.uri for e in parsed.entries] == ["seg17.ts", "seg18.ts", "seg19.ts"]
        assert parsed.entries[2].duration_s == pytest.approx(4.1, abs=1e-3)
        assert [e.sequence for e in parsed.entries] == [17, 18, 19]
        assert not parsed.ended

    def test_target_duration_is_spec_ceiling(self):
        # Regression: render used int(round(target + 0.5)), which
        # inflated whole-number targets (3.0 -> 4) and, via banker's
        # rounding, was parity-dependent for odd ones (2.0 -> 2 but
        # 3.0 -> 4).  The spec wants the ceiling.
        def rendered_target(seconds):
            playlist = MediaPlaylist(target_duration_s=seconds, media_sequence=0)
            tag = [line for line in playlist.render().splitlines()
                   if line.startswith("#EXT-X-TARGETDURATION:")][0]
            return int(tag.split(":", 1)[1])

        assert rendered_target(3.0) == 3
        assert rendered_target(2.0) == 2
        assert rendered_target(4.0) == 4
        assert rendered_target(3.2) == 4
        assert rendered_target(3.9) == 4

    def test_target_duration_roundtrip_stable(self):
        # parse(render()) must be a fixed point for the target duration,
        # both for integer and fractional configured targets.
        for seconds in (2.0, 3.0, 4.0, 3.5, 5.9):
            once = MediaPlaylist.parse(
                MediaPlaylist(target_duration_s=seconds, media_sequence=0).render()
            )
            twice = MediaPlaylist.parse(once.render())
            assert twice.target_duration_s == once.target_duration_s
            assert once.render() == twice.render()

    def test_ended_playlist(self):
        playlist = self.playlist()
        playlist.ended = True
        assert MediaPlaylist.parse(playlist.render()).ended

    def test_parse_rejects_non_m3u8(self):
        with pytest.raises(ValueError):
            MediaPlaylist.parse("hello world")

    def test_parse_rejects_uri_without_extinf(self):
        with pytest.raises(ValueError):
            MediaPlaylist.parse("#EXTM3U\nseg0.ts\n")

    def test_unknown_tags_ignored(self):
        text = self.playlist().render() + "#EXT-X-SOMETHING-NEW:1\n"
        assert len(MediaPlaylist.parse(text).entries) == 3

    def test_entry_validation(self):
        with pytest.raises(ValueError):
            PlaylistEntry("x.ts", 0.0, 0)

    def test_nbytes_positive(self):
        assert self.playlist().nbytes > 50


class TestLiveWindow:
    def test_window_slides(self):
        window = LiveWindow(target_duration_s=3.6, window_size=3)
        for i in range(5):
            window.add_segment(f"seg{i}.ts", 3.6)
        playlist = window.playlist()
        assert [e.uri for e in playlist.entries] == ["seg2.ts", "seg3.ts", "seg4.ts"]
        assert playlist.media_sequence == 2
        assert window.newest_sequence == 4

    def test_entries_after(self):
        window = LiveWindow(target_duration_s=4.0, window_size=4)
        for i in range(4):
            window.add_segment(f"seg{i}.ts", 4.0)
        new = window.entries_after(1)
        assert [e.sequence for e in new] == [2, 3]

    def test_end_stream(self):
        window = LiveWindow(target_duration_s=4.0)
        window.add_segment("a.ts", 4.0)
        window.end_stream()
        assert window.playlist().ended
        with pytest.raises(RuntimeError):
            window.add_segment("b.ts", 4.0)

    def test_empty_playlist(self):
        window = LiveWindow(target_duration_s=4.0)
        assert window.playlist().entries == []

    def test_validation(self):
        with pytest.raises(ValueError):
            LiveWindow(target_duration_s=4.0, window_size=0)


class TestWebSocket:
    def test_small_unmasked_roundtrip(self):
        frames, rest = decode_frames(encode_frame(b"hello"))
        assert rest == b""
        assert frames[0].payload == b"hello"
        assert frames[0].opcode == OPCODE_TEXT
        assert frames[0].fin

    def test_masked_roundtrip(self):
        data = encode_frame(b"secret chat", mask_key=b"\x01\x02\x03\x04")
        frames, _ = decode_frames(data)
        assert frames[0].masked
        assert frames[0].payload == b"secret chat"

    def test_mask_key_validation(self):
        with pytest.raises(ValueError):
            encode_frame(b"x", mask_key=b"\x01")

    def test_16bit_length(self):
        payload = b"a" * 300
        frames, _ = decode_frames(encode_frame(payload))
        assert frames[0].payload == payload

    def test_64bit_length(self):
        payload = b"b" * 70_000
        frames, _ = decode_frames(encode_frame(payload))
        assert len(frames[0].payload) == 70_000

    def test_partial_frame_returned_as_rest(self):
        data = encode_frame(b"hello world")
        frames, rest = decode_frames(data[:4])
        assert frames == []
        assert rest == data[:4]

    def test_multiple_frames_in_one_buffer(self):
        data = encode_frame(b"one") + encode_frame(b"two", opcode=OPCODE_CLOSE)
        frames, rest = decode_frames(data)
        assert [f.payload for f in frames] == [b"one", b"two"]
        assert frames[1].opcode == OPCODE_CLOSE

    def test_text_frame_size_matches_encoding(self):
        for text in ("hi", "x" * 200, "y" * 70_000):
            assert text_frame_size(text) == len(encode_frame(text.encode()))
            assert text_frame_size(text, masked=True) == len(
                encode_frame(text.encode(), mask_key=b"abcd")
            )

    def test_frame_json_helpers(self):
        message = chat_message_json("alice", "hi there", has_avatar=True)
        data = encode_frame(json.dumps(message).encode())
        frames, _ = decode_frames(data)
        parsed = frames[0].json()
        assert parsed["username"] == "alice"
        assert "profile_image_url" in parsed

    def test_chat_json_without_avatar(self):
        message = chat_message_json("bob", "yo", has_avatar=False)
        assert "profile_image_url" not in message


class TestParseTagOrder:
    """Regression: per-entry sequences must come from the *final*
    #EXT-X-MEDIA-SEQUENCE, wherever the tag sits (RFC 8216 allows it
    anywhere before the segment it applies to).  The old single-pass
    parser numbered entries from whatever value had been seen so far."""

    HEADER = "#EXT-X-VERSION:3\n#EXT-X-TARGETDURATION:4\n"
    SEQ_TAG = "#EXT-X-MEDIA-SEQUENCE:17\n"
    ENTRIES = "#EXTINF:3.600,\nseg17.ts\n#EXTINF:3.600,\nseg18.ts\n"

    def test_sequence_tag_after_first_extinf(self):
        # Legal M3U8: the media-sequence tag between the two entries.
        text = (
            "#EXTM3U\n" + self.HEADER
            + "#EXTINF:3.600,\nseg17.ts\n"
            + self.SEQ_TAG
            + "#EXTINF:3.600,\nseg18.ts\n"
        )
        parsed = MediaPlaylist.parse(text)
        assert parsed.media_sequence == 17
        assert [e.sequence for e in parsed.entries] == [17, 18]

    def test_sequence_tag_last(self):
        text = "#EXTM3U\n" + self.HEADER + self.ENTRIES + self.SEQ_TAG
        parsed = MediaPlaylist.parse(text)
        assert parsed.media_sequence == 17
        assert [e.sequence for e in parsed.entries] == [17, 18]

    def test_all_header_permutations_agree(self):
        import itertools

        blocks = ["#EXT-X-VERSION:3\n", "#EXT-X-TARGETDURATION:4\n", self.SEQ_TAG]
        reference = None
        for order in itertools.permutations(blocks):
            text = "#EXTM3U\n" + "".join(order) + self.ENTRIES
            parsed = MediaPlaylist.parse(text)
            key = (
                parsed.media_sequence,
                tuple((e.uri, e.sequence) for e in parsed.entries),
                parsed.version,
                parsed.target_duration_s,
            )
            if reference is None:
                reference = key
            assert key == reference

    def test_parse_render_fixed_point(self):
        playlist = MediaPlaylist(
            target_duration_s=4.0,
            media_sequence=17,
            entries=[
                PlaylistEntry("seg17.ts", 3.6, 17),
                PlaylistEntry("seg18.ts", 3.6, 18),
            ],
            ended=True,
        )
        once = MediaPlaylist.parse(playlist.render())
        twice = MediaPlaylist.parse(once.render())
        assert once.render() == twice.render()
        assert [e.sequence for e in once.entries] == [17, 18]


class TestRenderByteCache:
    """Regression: nbytes re-rendered and re-encoded the playlist on
    every access; now the bytes are cached and invalidated on any
    rendered-field mutation."""

    def playlist(self):
        return MediaPlaylist(
            target_duration_s=4.0,
            media_sequence=3,
            entries=[PlaylistEntry("seg3.ts", 3.6, 3)],
        )

    def test_cache_hit_returns_same_object(self):
        playlist = self.playlist()
        first = playlist.render_bytes()
        assert playlist.render_bytes() is first
        assert playlist.nbytes == len(first)

    def test_entry_mutation_invalidates(self):
        playlist = self.playlist()
        before = playlist.nbytes
        playlist.entries.append(PlaylistEntry("seg4-long-name.ts", 3.6, 4))
        after = playlist.nbytes
        assert after > before
        assert playlist.render_bytes() == playlist.render().encode("utf-8")

    def test_ended_mutation_invalidates(self):
        playlist = self.playlist()
        before = playlist.nbytes
        playlist.ended = True
        assert playlist.nbytes == before + len("#EXT-X-ENDLIST\n")

    def test_media_sequence_mutation_invalidates(self):
        playlist = self.playlist()
        playlist.nbytes
        playlist.media_sequence = 4000
        assert b"#EXT-X-MEDIA-SEQUENCE:4000" in playlist.render_bytes()

    def test_cached_bytes_match_fresh_render(self):
        playlist = self.playlist()
        for _ in range(3):
            assert playlist.render_bytes() == playlist.render().encode("utf-8")


class TestLiveWindowPlaylistCache:
    def test_playlist_cached_between_mutations(self):
        window = LiveWindow(target_duration_s=3.6, window_size=3)
        window.add_segment("seg0.ts", 3.6)
        first = window.playlist()
        assert window.playlist() is first
        window.add_segment("seg1.ts", 3.6)
        second = window.playlist()
        assert second is not first
        assert [e.uri for e in second.entries] == ["seg0.ts", "seg1.ts"]
        window.end_stream()
        assert window.playlist() is not second
        assert window.playlist().ended
