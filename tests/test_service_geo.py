"""Tests for the geography model."""

import random

import pytest

from repro.service.geo import (
    POPULATION_CENTERS,
    GeoPoint,
    GeoRect,
    local_hour,
    sample_location,
)


def test_geopoint_validation():
    with pytest.raises(ValueError):
        GeoPoint(91.0, 0.0)
    with pytest.raises(ValueError):
        GeoPoint(0.0, 200.0)


def test_distance_wraps_dateline():
    a = GeoPoint(0.0, 179.0)
    b = GeoPoint(0.0, -179.0)
    assert a.distance_deg(b) == pytest.approx(2.0)


def test_rect_validation():
    with pytest.raises(ValueError):
        GeoRect(10.0, 0.0, -10.0, 5.0)
    with pytest.raises(ValueError):
        GeoRect(0.0, 10.0, 5.0, -10.0)


def test_rect_contains():
    rect = GeoRect(0.0, 0.0, 10.0, 10.0)
    assert rect.contains(GeoPoint(5.0, 5.0))
    assert rect.contains(GeoPoint(0.0, 0.0))  # boundary inclusive
    assert not rect.contains(GeoPoint(-1.0, 5.0))


def test_quadrants_partition_area():
    rect = GeoRect(-10.0, -20.0, 30.0, 20.0)
    quads = rect.quadrants()
    assert len(quads) == 4
    assert sum(q.area_deg2 for q in quads) == pytest.approx(rect.area_deg2)
    # A point is inside exactly one quadrant unless on the split lines.
    point = GeoPoint(3.123, 7.456)
    assert sum(1 for q in quads if q.contains(point)) == 1


def test_world_rect_covers_everything():
    world = GeoRect.world()
    rng = random.Random(1)
    for _ in range(100):
        location, _ = sample_location(rng)
        assert world.contains(location)


def test_sample_location_clusters_near_centers():
    rng = random.Random(2)
    near = 0
    trials = 500
    for _ in range(trials):
        location, center = sample_location(rng)
        if location.distance_deg(center.location) < 4 * center.spread_deg:
            near += 1
    assert near / trials > 0.95


def test_population_weights_positive():
    assert all(c.weight > 0 for c in POPULATION_CENTERS)
    # No center in Africa (the paper found no ingest server there either).
    assert not any(-18 < c.location.lon < 50 and -35 < c.location.lat < 15
                   for c in POPULATION_CENTERS)


def test_local_hour():
    assert local_hour(0.0, 0) == 0.0
    assert local_hour(3600.0 * 25, 0) == pytest.approx(1.0)
    assert local_hour(0.0, 3) == 3.0
    assert local_hour(3600.0 * 23, 3) == pytest.approx(2.0)


def test_rect_key_hashable():
    rect = GeoRect(0.0, 0.0, 1.0, 1.0)
    assert rect.key() == (0.0, 0.0, 1.0, 1.0)
    assert {rect.key(): 1}
