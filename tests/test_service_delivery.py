"""Tests for the live source driver, RTMP delivery and the HLS origin."""

import random

import pytest

from repro.media.frames import AudioFrame, EncodedFrame
from repro.netsim.connection import Connection
from repro.netsim.events import EventLoop
from repro.netsim.topology import Network
from repro.protocols.http import HttpRequest, HttpStatus
from repro.protocols.rtmp import RtmpPushSession
from repro.service.broadcast import sample_broadcast
from repro.service.delivery import (
    HlsOrigin,
    LiveSourceDriver,
    RtmpDelivery,
    UplinkModel,
)
from repro.service.geo import POPULATION_CENTERS, GeoPoint


def make_broadcast(seed=1, mean_viewers=10.0, duration=3600.0):
    b = sample_broadcast(random.Random(seed), 0.0, GeoPoint(40.0, -74.0),
                         POPULATION_CENTERS[0])
    b.mean_viewers = mean_viewers
    b.duration_s = duration
    return b


class TestUplinkModel:
    def test_outage_schedule_within_window(self):
        model = UplinkModel(outage_rate_per_s=0.05)
        outages = model.outage_schedule(random.Random(1), 0.0, 600.0)
        assert outages
        assert all(0.0 <= s < 600.0 and e > s for s, e in outages)

    def test_no_outages_when_rate_zero(self):
        model = UplinkModel(outage_rate_per_s=0.0)
        assert model.outage_schedule(random.Random(1), 0.0, 600.0) == []

    def test_arrival_after_capture(self):
        model = UplinkModel()
        rng = random.Random(2)
        for t in (0.0, 5.0, 100.0):
            assert model.arrival_time(t, rng, []) > t

    def test_outage_defers_arrival(self):
        model = UplinkModel(base_delay_s=0.1, jitter_s=0.0)
        arrival = model.arrival_time(10.0, random.Random(3), [(10.05, 14.0)])
        assert arrival >= 14.0


class TestLiveSourceDriver:
    def test_history_vs_future_split(self):
        loop = EventLoop()
        driver = LiveSourceDriver(loop, make_broadcast(), age_at_join=10.0,
                                  horizon_s=5.0, generate_from=5.0)
        received = []
        driver.add_sink(lambda f, t: received.append((f, t)))
        driver.start()
        # History: frames that arrived at the ingest before the join.
        assert driver.history
        assert all(t <= 0.0 for t, _ in driver.history)
        loop.run_until(5.0)
        assert received
        assert all(t > 0.0 for _, t in received)

    def test_media_timeline_continuous_across_join(self):
        loop = EventLoop()
        driver = LiveSourceDriver(loop, make_broadcast(), age_at_join=8.0,
                                  horizon_s=4.0, generate_from=4.0)
        pts = []
        driver.add_sink(lambda f, t: pts.append(f.pts) if isinstance(f, EncodedFrame) else None)
        driver.start()
        history_pts = [f.pts for _, f in driver.history if isinstance(f, EncodedFrame)]
        assert min(history_pts) == pytest.approx(4.0, abs=0.5)
        loop.run_until(4.0)
        assert max(pts) == pytest.approx(12.0, abs=0.5)

    def test_ntp_timestamps_near_capture_times(self):
        loop = EventLoop()
        driver = LiveSourceDriver(loop, make_broadcast(), age_at_join=2.0,
                                  horizon_s=10.0, broadcaster_clock_offset_s=0.05)
        stamps = []

        def sink(frame, arrival):
            if isinstance(frame, EncodedFrame) and frame.ntp_timestamp is not None:
                stamps.append((frame.ntp_timestamp, arrival))

        driver.add_sink(sink)
        driver.start()
        loop.run_until(10.0)
        assert stamps
        for ntp, arrival in stamps:
            # Arrival at ingest is capture + uplink; the NTP stamp carries
            # the clock offset, so the difference is small and positive-ish.
            assert -0.2 < arrival - ntp < 8.0

    def test_cannot_start_twice(self):
        loop = EventLoop()
        driver = LiveSourceDriver(loop, make_broadcast(), age_at_join=1.0, horizon_s=2.0)
        driver.start()
        with pytest.raises(RuntimeError):
            driver.start()

    def test_negative_age_rejected(self):
        with pytest.raises(ValueError):
            LiveSourceDriver(EventLoop(), make_broadcast(), age_at_join=-1.0, horizon_s=5.0)


class TestRtmpDelivery:
    def _wire(self, age=10.0):
        loop = EventLoop()
        net = Network(loop)
        server, phone = net.host("ingest"), net.host("phone")
        net.duplex(server, phone, rate_bps=50e6, delay_s=0.02)
        fwd, rev = net.duplex_paths("ingest", "phone")
        received = []
        conn = Connection(loop, fwd, rev,
                          on_message=lambda m, t: received.append((m.payload, t)))
        driver = LiveSourceDriver(loop, make_broadcast(), age_at_join=age,
                                  horizon_s=10.0, generate_from=age - 3.0)
        delivery = RtmpDelivery(RtmpPushSession(conn), driver)
        driver.start()
        return loop, delivery, received

    def test_backlog_starts_with_keyframe(self):
        loop, delivery, received = self._wire()
        delivery.start()
        loop.run_until(0.5)
        video = [f for f, _ in received if isinstance(f, EncodedFrame)]
        assert video
        assert video[0].frame_type == "I"

    def test_no_frames_before_start(self):
        loop, delivery, received = self._wire()
        loop.run_until(1.0)
        assert received == []

    def test_live_frames_flow_after_start(self):
        loop, delivery, received = self._wire()
        delivery.start()
        loop.run_until(8.0)
        video = [f for f, _ in received if isinstance(f, EncodedFrame)]
        # ~3 s backlog + 8 s live at >20 fps.
        assert len(video) > 150


class TestHlsOrigin:
    def _origin(self, age=30.0, **kwargs):
        loop = EventLoop()
        driver = LiveSourceDriver(loop, make_broadcast(seed=3), age_at_join=age,
                                  horizon_s=20.0, generate_from=max(0.0, age - 16.0))
        origin = HlsOrigin(loop, driver, **kwargs)
        driver.start()
        origin.start()
        return loop, origin

    def test_history_publishes_window(self):
        loop, origin = self._origin()
        playlist = origin.window.playlist()
        assert 1 <= len(playlist.entries) <= 3
        assert origin.segments_published >= 2

    def test_live_segments_appear_over_time(self):
        loop, origin = self._origin()
        before = origin.window.newest_sequence
        loop.run_until(15.0)
        assert origin.window.newest_sequence > before

    def test_segment_durations_in_range(self):
        loop, origin = self._origin()
        loop.run_until(20.0)
        playlist = origin.window.playlist()
        for entry in playlist.entries:
            assert 2.0 <= entry.duration_s <= 7.0

    def test_http_playlist_and_segment_fetch(self):
        loop, origin = self._origin()
        resp = origin.handle(HttpRequest("GET", "/b/playlist.m3u8"), "c")
        assert resp.status == HttpStatus.OK
        playlist = resp.payload
        assert playlist.entries
        seg_resp = origin.handle(HttpRequest("GET", f"/{playlist.entries[-1].uri}"), "c")
        assert seg_resp.status == HttpStatus.OK
        assert seg_resp.payload.video_frames
        assert seg_resp.body_bytes > 1000

    def test_unknown_segment_404(self):
        loop, origin = self._origin()
        resp = origin.handle(HttpRequest("GET", "/seg99999.ts"), "c")
        assert resp.status == HttpStatus.NOT_FOUND

    def test_post_rejected(self):
        loop, origin = self._origin()
        resp = origin.handle(HttpRequest("POST", "/b/playlist.m3u8", json_body={}), "c")
        assert resp.status == HttpStatus.NOT_FOUND

    def test_byte_fidelity_returns_real_ts(self):
        from repro.protocols import mpegts

        loop, origin = self._origin(byte_fidelity=True)
        resp = origin.handle(HttpRequest("GET", "/b/playlist.m3u8"), "c")
        seg_resp = origin.handle(
            HttpRequest("GET", f"/{resp.payload.entries[-1].uri}"), "c"
        )
        result = mpegts.demux_segment(seg_resp.data)
        assert len(result.video_frames) == len(seg_resp.payload.video_frames)
