"""Tests for Welch's t-test and the special functions under it."""

import random

import pytest

from repro.analysis.stats import (
    regularized_incomplete_beta,
    student_t_sf,
    welch_t_test,
)


class TestIncompleteBeta:
    def test_boundaries(self):
        assert regularized_incomplete_beta(2.0, 3.0, 0.0) == 0.0
        assert regularized_incomplete_beta(2.0, 3.0, 1.0) == 1.0

    def test_symmetric_case(self):
        # I_0.5(a, a) = 0.5 for any a.
        for a in (0.5, 1.0, 3.0, 10.0):
            assert regularized_incomplete_beta(a, a, 0.5) == pytest.approx(0.5)

    def test_uniform_case(self):
        # I_x(1, 1) = x.
        for x in (0.1, 0.33, 0.9):
            assert regularized_incomplete_beta(1.0, 1.0, x) == pytest.approx(x)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            regularized_incomplete_beta(1.0, 1.0, 1.5)


class TestStudentT:
    def test_zero_statistic_is_half(self):
        for df in (1, 5, 30, 200):
            assert student_t_sf(0.0, df) == pytest.approx(0.5)

    def test_known_quantile_df10(self):
        # t_{0.975, 10} = 2.228: P(T > 2.228) = 0.025.
        assert student_t_sf(2.228, 10) == pytest.approx(0.025, abs=2e-4)

    def test_large_df_approaches_normal(self):
        # P(Z > 1.96) = 0.025.
        assert student_t_sf(1.96, 10_000) == pytest.approx(0.025, abs=5e-4)

    def test_negative_t(self):
        assert student_t_sf(-1.0, 10) == pytest.approx(1.0 - student_t_sf(1.0, 10))

    def test_df_validation(self):
        with pytest.raises(ValueError):
            student_t_sf(1.0, 0)


class TestWelch:
    def test_identical_distributions_not_significant(self):
        rng = random.Random(1)
        a = [rng.gauss(10, 2) for _ in range(200)]
        b = [rng.gauss(10, 2) for _ in range(200)]
        result = welch_t_test(a, b)
        assert not result.significant()
        assert result.p_value > 0.05

    def test_different_means_significant(self):
        rng = random.Random(2)
        a = [rng.gauss(10, 2) for _ in range(100)]
        b = [rng.gauss(12, 2) for _ in range(100)]
        result = welch_t_test(a, b)
        assert result.significant()
        assert result.p_value < 1e-6

    def test_unequal_variances_handled(self):
        rng = random.Random(3)
        a = [rng.gauss(5, 0.1) for _ in range(50)]
        b = [rng.gauss(5, 5.0) for _ in range(500)]
        result = welch_t_test(a, b)
        assert 0.0 <= result.p_value <= 1.0
        assert result.degrees_of_freedom > 2

    def test_constant_samples(self):
        result = welch_t_test([3.0, 3.0, 3.0], [3.0, 3.0])
        assert result.p_value == 1.0
        assert result.t_statistic == 0.0

    def test_sample_size_validation(self):
        with pytest.raises(ValueError):
            welch_t_test([1.0], [1.0, 2.0])

    def test_agrees_with_scipy(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        rng = random.Random(4)
        a = [rng.gauss(10, 3) for _ in range(37)]
        b = [rng.gauss(11, 1.5) for _ in range(61)]
        ours = welch_t_test(a, b)
        theirs = scipy_stats.ttest_ind(a, b, equal_var=False)
        assert ours.t_statistic == pytest.approx(theirs.statistic, rel=1e-9)
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-7)


class TestCharts:
    def test_render_table(self):
        from repro.analysis.charts import render_table

        out = render_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "333" in lines[3]

    def test_render_cdf(self):
        from repro.analysis.charts import render_cdf
        from repro.util.empirical import Ecdf

        out = render_cdf({"rtmp": Ecdf([1, 2, 3]), "hls": Ecdf([2, 4, 6])},
                         xs=[1, 3, 6], x_label="latency")
        assert "rtmp F(x)" in out
        assert "1.000" in out

    def test_render_boxplot_rows(self):
        from repro.analysis.charts import render_boxplot_rows
        from repro.util.empirical import five_number_summary

        out = render_boxplot_rows(
            {"0.5": five_number_summary([1, 2, 3, 4, 5]),
             "1": five_number_summary([0, 1, 2])}, "join (s)")
        assert "median" in out
        assert "0.5" in out

    def test_render_bars(self):
        from repro.analysis.charts import render_bars

        out = render_bars({"home": {"wifi": 1000.0, "lte": 950.0}}, unit="mW")
        assert "wifi" in out and "#" in out

    def test_render_scatter_summary(self):
        from repro.analysis.charts import render_scatter_summary

        out = render_scatter_summary(
            [(100.0, 30.0), (200.0, 35.0)], "bitrate", "qp",
            x_bins=[(0.0, 150.0), (150.0, 300.0)])
        assert "30.0" in out
