"""Tests for the playout buffer's QoE accounting."""

import pytest

from repro.netsim.events import EventLoop
from repro.player.buffer import PlayoutBuffer


def make(loop=None, start=2.0, rebuffer=1.0, broadcast_start=0.0):
    loop = loop or EventLoop()
    return loop, PlayoutBuffer(
        loop,
        start_threshold_s=start,
        rebuffer_threshold_s=rebuffer,
        broadcast_start=broadcast_start,
    )


def test_thresholds_validated():
    loop = EventLoop()
    with pytest.raises(ValueError):
        PlayoutBuffer(loop, start_threshold_s=0, rebuffer_threshold_s=1, broadcast_start=0)
    with pytest.raises(ValueError):
        PlayoutBuffer(loop, start_threshold_s=1, rebuffer_threshold_s=0, broadcast_start=0)


def test_never_started_all_join_time():
    loop, buf = make()
    loop.schedule(0.5, lambda: buf.on_media(1.0))  # below start threshold
    loop.run()
    report = buf.finalize(60.0)
    assert not report.started
    assert report.join_time_s == 60.0
    assert report.playback_s == 0.0
    assert report.mean_playback_latency_s is None


def test_playback_starts_at_threshold():
    loop, buf = make(start=2.0)
    buf.set_play_origin(0.0)
    loop.schedule(0.5, lambda: buf.on_media(1.0))
    loop.schedule(1.0, lambda: buf.on_media(2.5))  # 2.5s media >= threshold
    loop.run_until(10.0)
    report = buf.finalize(10.0)
    assert report.started
    assert report.join_time_s == pytest.approx(1.0)
    # Only 2.5 s of media ever arrives; the rest of the session stalls.
    assert report.playback_s == pytest.approx(2.5)
    assert report.stall_count == 1
    assert report.stalls[0].duration == pytest.approx(10.0 - 1.0 - 2.5)


def test_stall_when_buffer_runs_dry():
    loop, buf = make(start=1.0, rebuffer=1.0)
    buf.set_play_origin(0.0)
    # 3 seconds of media at t=0, nothing more until t=10.
    buf.on_media(3.0)
    loop.schedule(10.0, lambda: buf.on_media(20.0))
    loop.run_until(15.0)
    report = buf.finalize(15.0)
    assert report.started
    assert report.stall_count == 1
    stall = report.stalls[0]
    assert stall.start == pytest.approx(3.0)   # playhead hits 3.0s of media
    assert stall.duration == pytest.approx(7.0)
    assert report.playback_s == pytest.approx(15.0 - 7.0)


def test_stall_in_progress_runs_to_session_end():
    loop, buf = make(start=1.0)
    buf.set_play_origin(0.0)
    buf.on_media(2.0)
    loop.run_until(30.0)
    report = buf.finalize(30.0)
    assert report.stall_count == 1
    assert report.stalls[0].duration == pytest.approx(28.0)
    assert report.join_time_s + report.playback_s + report.total_stall_s == pytest.approx(30.0)


def test_playback_latency_constant_while_playing():
    loop, buf = make(start=1.0, broadcast_start=-100.0)
    # Media up to pts 102 arrives at t=0: playhead starts at origin 102? No —
    # origin is the first frontier seen.
    buf.set_play_origin(100.0)
    buf.on_media(102.0)
    loop.run_until(2.0)
    report = buf.finalize(2.0)
    # Playing from t=0 at media 100, broadcast started at -100:
    # latency = 0 - 100 - (-100) = 0... playhead media=100 captured at t=0.
    assert report.mean_playback_latency_s == pytest.approx(0.0, abs=1e-9)


def test_playback_latency_reflects_buffer_age():
    loop, buf = make(start=1.0, broadcast_start=-10.0)
    # Media captured long ago (pts 0-2 of a broadcast started at t=-10)
    # arrives now: playing old frames means high latency.
    buf.set_play_origin(0.0)
    buf.on_media(2.0)
    loop.run_until(1.0)
    report = buf.finalize(1.0)
    # At t=0 playhead is at pts 0, captured at -10: latency 10 s.
    assert report.mean_playback_latency_s == pytest.approx(10.0)


def test_latency_grows_after_stall():
    loop, buf = make(start=1.0, rebuffer=1.0, broadcast_start=0.0)
    buf.set_play_origin(0.0)
    buf.on_media(2.0)
    loop.schedule(7.0, lambda: buf.on_media(60.0))
    loop.run_until(20.0)
    report = buf.finalize(20.0)
    assert report.stall_count == 1
    # Two playing intervals; the second has 5 s more latency.
    assert report.mean_playback_latency_s > 0


def test_set_play_origin_after_start_rejected():
    loop, buf = make(start=0.5)
    buf.set_play_origin(0.0)
    buf.on_media(5.0)
    loop.run_until(1.0)
    with pytest.raises(RuntimeError):
        buf.set_play_origin(0.0)


def test_finalize_twice_rejected():
    loop, buf = make()
    buf.finalize(1.0)
    with pytest.raises(RuntimeError):
        buf.finalize(2.0)


def test_media_after_finalize_ignored():
    loop, buf = make()
    buf.finalize(1.0)
    buf.on_media(100.0)  # no crash, no effect


def test_buffer_level_tracking():
    loop, buf = make(start=1.0)
    buf.set_play_origin(0.0)
    buf.on_media(5.0)
    loop.run_until(2.0)
    assert buf.playing
    assert buf.buffer_level_s() == pytest.approx(3.0)


def test_report_consistency_invariant():
    loop, buf = make(start=1.0, rebuffer=1.0)
    buf.set_play_origin(0.0)
    buf.on_media(2.0)
    loop.schedule(5.0, lambda: buf.on_media(8.0))
    loop.schedule(12.0, lambda: buf.on_media(30.0))
    loop.run_until(20.0)
    report = buf.finalize(20.0)
    assert report.join_time_s + report.playback_s + report.total_stall_s == pytest.approx(20.0)
