"""Tests for replay (VOD) serving and playback — "Video on (not live)"."""

import random

import pytest

from repro.netsim.duplex import DuplexStream
from repro.netsim.events import EventLoop
from repro.netsim.topology import Network
from repro.player.hls_player import HlsPlayer
from repro.protocols.http import HttpClient, HttpRequest, HttpServer, HttpStatus
from repro.service.broadcast import sample_broadcast
from repro.service.delivery import ReplayOrigin
from repro.service.geo import POPULATION_CENTERS, GeoPoint
from repro.util.units import MBPS


def replayable_broadcast(seed=21):
    b = sample_broadcast(random.Random(seed), 0.0, GeoPoint(51.5, -0.1),
                         POPULATION_CENTERS[8])
    b.available_for_replay = True
    b.mean_viewers = 10.0
    return b


class TestReplayOrigin:
    def test_playlist_is_ended_with_all_segments(self):
        origin = ReplayOrigin(replayable_broadcast(), duration_s=30.0)
        playlist = origin.window.playlist()
        assert playlist.ended
        assert len(playlist.entries) == origin.segment_count
        assert origin.segment_count >= 5

    def test_segments_servable(self):
        origin = ReplayOrigin(replayable_broadcast(), duration_s=20.0)
        playlist = origin.handle(HttpRequest("GET", "/b/playlist.m3u8"), "c").payload
        for entry in playlist.entries:
            resp = origin.handle(HttpRequest("GET", f"/{entry.uri}"), "c")
            assert resp.status == HttpStatus.OK
            assert resp.payload.video_frames

    def test_unreplayable_broadcast_rejected(self):
        b = replayable_broadcast()
        b.available_for_replay = False
        with pytest.raises(ValueError):
            ReplayOrigin(b, duration_s=10.0)

    def test_duration_validation(self):
        with pytest.raises(ValueError):
            ReplayOrigin(replayable_broadcast(), duration_s=0.0)

    def test_unknown_segment_404(self):
        origin = ReplayOrigin(replayable_broadcast(), duration_s=10.0)
        assert origin.handle(HttpRequest("GET", "/nope.ts"), "c").status == \
            HttpStatus.NOT_FOUND


class TestReplayPlayback:
    def test_vod_player_plays_from_the_start(self):
        loop = EventLoop()
        net = Network(loop)
        phone, cdn = net.host("phone"), net.host("cdn")
        net.duplex(phone, cdn, rate_bps=20 * MBPS, delay_s=0.02)
        origin = ReplayOrigin(replayable_broadcast(seed=22), duration_s=60.0)
        streams = [DuplexStream(loop, net, "phone", "cdn", name=f"s{i}")
                   for i in range(2)]
        for stream in streams:
            HttpServer(loop, stream, origin.handle)
        player = HlsPlayer(
            loop,
            playlist_client=HttpClient(loop, streams[0]),
            segment_client=HttpClient(loop, streams[1]),
            playlist_path="/replay/playlist.m3u8",
            broadcast_start=0.0,
            vod=True,
        )
        player.start()
        loop.run_until(30.0)
        report = player.finalize(30.0)
        assert report.started
        assert report.playback_s > 20.0
        # VOD starts at the beginning of the recording.
        first = min(s.start_pts for s in player.segments_fetched)
        assert first == pytest.approx(0.0, abs=0.5)
        # Prefetching runs ahead of the playhead (no live window limit).
        fetched_media = sum(s.duration_s for s in player.segments_fetched)
        assert fetched_media > report.playback_s
