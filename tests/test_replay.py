"""Tests for replay (VOD) serving and playback — "Video on (not live)" —
and the golden-trace replay fixture for a faulted session."""

import hashlib
import json
import pathlib
import random

import pytest

from repro.netsim.duplex import DuplexStream
from repro.netsim.events import EventLoop
from repro.netsim.topology import Network
from repro.player.hls_player import HlsPlayer
from repro.protocols.http import HttpClient, HttpRequest, HttpServer, HttpStatus
from repro.service.broadcast import sample_broadcast
from repro.service.delivery import ReplayOrigin
from repro.service.geo import POPULATION_CENTERS, GeoPoint
from repro.util.units import MBPS


def replayable_broadcast(seed=21):
    b = sample_broadcast(random.Random(seed), 0.0, GeoPoint(51.5, -0.1),
                         POPULATION_CENTERS[8])
    b.available_for_replay = True
    b.mean_viewers = 10.0
    return b


class TestReplayOrigin:
    def test_playlist_is_ended_with_all_segments(self):
        origin = ReplayOrigin(replayable_broadcast(), duration_s=30.0)
        playlist = origin.window.playlist()
        assert playlist.ended
        assert len(playlist.entries) == origin.segment_count
        assert origin.segment_count >= 5

    def test_segments_servable(self):
        origin = ReplayOrigin(replayable_broadcast(), duration_s=20.0)
        playlist = origin.handle(HttpRequest("GET", "/b/playlist.m3u8"), "c").payload
        for entry in playlist.entries:
            resp = origin.handle(HttpRequest("GET", f"/{entry.uri}"), "c")
            assert resp.status == HttpStatus.OK
            assert resp.payload.video_frames

    def test_unreplayable_broadcast_rejected(self):
        b = replayable_broadcast()
        b.available_for_replay = False
        with pytest.raises(ValueError):
            ReplayOrigin(b, duration_s=10.0)

    def test_duration_validation(self):
        with pytest.raises(ValueError):
            ReplayOrigin(replayable_broadcast(), duration_s=0.0)

    def test_unknown_segment_404(self):
        origin = ReplayOrigin(replayable_broadcast(), duration_s=10.0)
        assert origin.handle(HttpRequest("GET", "/nope.ts"), "c").status == \
            HttpStatus.NOT_FOUND


class TestReplayPlayback:
    def test_vod_player_plays_from_the_start(self):
        loop = EventLoop()
        net = Network(loop)
        phone, cdn = net.host("phone"), net.host("cdn")
        net.duplex(phone, cdn, rate_bps=20 * MBPS, delay_s=0.02)
        origin = ReplayOrigin(replayable_broadcast(seed=22), duration_s=60.0)
        streams = [DuplexStream(loop, net, "phone", "cdn", name=f"s{i}")
                   for i in range(2)]
        for stream in streams:
            HttpServer(loop, stream, origin.handle)
        player = HlsPlayer(
            loop,
            playlist_client=HttpClient(loop, streams[0]),
            segment_client=HttpClient(loop, streams[1]),
            playlist_path="/replay/playlist.m3u8",
            broadcast_start=0.0,
            vod=True,
        )
        player.start()
        loop.run_until(30.0)
        report = player.finalize(30.0)
        assert report.started
        assert report.playback_s > 20.0
        # VOD starts at the beginning of the recording.
        first = min(s.start_pts for s in player.segments_fetched)
        assert first == pytest.approx(0.0, abs=0.5)
        # Prefetching runs ahead of the playhead (no live window limit).
        fetched_media = sum(s.duration_s for s in player.segments_fetched)
        assert fetched_media > report.playback_s


# --------------------------------------------------- golden faulted trace

GOLDEN_PATH = pathlib.Path(__file__).parent / "fixtures" / \
    "faulted_session_trace.json"
GOLDEN_SEED = 77
GOLDEN_FAULTS = "loss=0.02,jitter=0.005,flap=0.01:0.5:2,ingest=0.03:1:2,api5xx=0.1"


def _run_golden_session():
    from repro.automation.devices import GALAXY_S4
    from repro.core.session import SessionSetup, ViewingSession
    from repro.faults import FaultPlan
    from repro.service.selection import DeliveryProtocol

    from test_core_session import make_broadcast

    setup = SessionSetup(
        broadcast=make_broadcast(seed=GOLDEN_SEED),
        age_at_join=600.0,
        protocol=DeliveryProtocol.RTMP,
        device=GALAXY_S4,
        watch_seconds=20.0,
        seed=GOLDEN_SEED,
        faults=FaultPlan.parse(GOLDEN_FAULTS),
    )
    return ViewingSession(setup).run()


def _canonical_trace(capture):
    """Render the capture as stable text lines.

    Flow and message ids come from process-global counters, so they are
    normalized to first-appearance indices; ``_``-prefixed annotations
    carry live objects and are skipped.
    """
    flow_index = {}
    message_index = {}
    lines = []
    for record in capture.records:
        flow = flow_index.setdefault(record.flow_id, len(flow_index))
        if record.message_id < 0:
            message = -1
        else:
            message = message_index.setdefault(
                record.message_id, len(message_index)
            )
        annotations = ",".join(
            f"{key}={value!r}"
            for key, value in record.annotations
            if not key.startswith("_")
            and isinstance(value, (str, int, float, bool, type(None)))
        )
        lines.append(
            f"{record.timestamp:.9f} {record.direction} flow={flow} "
            f"seq={record.seq} bytes={record.payload_bytes}/{record.wire_bytes} "
            f"ack={int(record.is_ack)} "
            f"msg={message}:{record.message_offset}:{record.message_total} "
            f"[{annotations}]"
        )
    return lines


def _trace_summary(lines):
    digest = hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()
    return {
        "packet_count": len(lines),
        "sha256": digest,
        "head": lines[:5],
        "tail": lines[-5:],
    }


@pytest.mark.parametrize("network_path", ["fast", "exact"])
def test_golden_faulted_trace_replays_byte_exact(network_path):
    """One faulted session replayed against a stored golden trace: any
    drift in fault sampling, event ordering, or packetization shows up
    as a digest mismatch.  Runs under both the segment-granularity fast
    path and the exact per-packet path — the same fixture must match
    either way.  Regenerate (after an *intended* change) with
    ``PYTHONPATH=src python tests/test_replay.py``."""
    from repro.netsim import fastpath

    expected = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    if network_path == "exact":
        with fastpath.exact_network():
            artifacts = _run_golden_session()
    else:
        artifacts = _run_golden_session()
    summary = _trace_summary(_canonical_trace(artifacts.capture))
    assert summary["packet_count"] == expected["packet_count"]
    assert summary["head"] == expected["head"]
    assert summary["tail"] == expected["tail"]
    assert summary["sha256"] == expected["sha256"]


if __name__ == "__main__":  # regenerate the golden fixture
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    regenerated = _trace_summary(_canonical_trace(_run_golden_session().capture))
    GOLDEN_PATH.write_text(json.dumps(regenerated, indent=2) + "\n",
                           encoding="utf-8")
    print(f"wrote {GOLDEN_PATH} ({regenerated['packet_count']} packets, "
          f"sha256={regenerated['sha256'][:12]}...)")
