"""Unit tests for links and token-bucket shaping."""

import pytest

from repro.netsim.events import EventLoop
from repro.netsim.link import Link, TokenBucketShaper
from repro.netsim.packet import HEADER_BYTES, Packet


def make_packet(nbytes=1000, flow=1, seq=0):
    return Packet(flow_id=flow, seq=seq, payload_bytes=nbytes)


def test_link_serialization_plus_propagation():
    loop = EventLoop()
    link = Link(loop, rate_bps=8_000.0, delay_s=0.5)  # 1000 B/s
    arrivals = []
    link.deliver = lambda p: arrivals.append(loop.now)
    pkt = make_packet(nbytes=1000 - HEADER_BYTES)  # exactly 1000 wire bytes
    link.send(pkt)
    loop.run()
    # 1000 bytes at 1000 B/s = 1 s serialize + 0.5 s propagate.
    assert arrivals == [pytest.approx(1.5)]


def test_link_fifo_queueing_delay():
    loop = EventLoop()
    link = Link(loop, rate_bps=8_000.0, delay_s=0.0)
    arrivals = []
    link.deliver = lambda p: arrivals.append((p.seq, loop.now))
    link.send(make_packet(nbytes=1000 - HEADER_BYTES, seq=0))
    link.send(make_packet(nbytes=1000 - HEADER_BYTES, seq=1))
    loop.run()
    assert arrivals[0] == (0, pytest.approx(1.0))
    assert arrivals[1] == (1, pytest.approx(2.0))


def test_link_requires_positive_rate():
    with pytest.raises(ValueError):
        Link(EventLoop(), rate_bps=0.0, delay_s=0.0)
    with pytest.raises(ValueError):
        Link(EventLoop(), rate_bps=1.0, delay_s=-1.0)


def test_link_tap_sees_ingress_time():
    loop = EventLoop()
    link = Link(loop, rate_bps=8e6, delay_s=0.1)
    link.deliver = lambda p: None
    seen = []
    link.tap(lambda p, t: seen.append((p.seq, t)))
    loop.schedule(1.0, lambda: link.send(make_packet(seq=7)))
    loop.run()
    assert seen == [(7, 1.0)]


def test_link_untap():
    loop = EventLoop()
    link = Link(loop, rate_bps=8e6, delay_s=0.0)
    link.deliver = lambda p: None
    seen = []
    obs = lambda p, t: seen.append(p.seq)
    link.tap(obs)
    link.send(make_packet(seq=1))
    link.untap(obs)
    link.send(make_packet(seq=2))
    loop.run()
    assert seen == [1]


def test_link_without_sink_raises():
    loop = EventLoop()
    link = Link(loop, rate_bps=8e6, delay_s=0.0)
    link.send(make_packet())
    with pytest.raises(RuntimeError):
        loop.run()


def test_link_counters():
    loop = EventLoop()
    link = Link(loop, rate_bps=8e6, delay_s=0.0)
    link.deliver = lambda p: None
    pkt = make_packet(nbytes=100)
    link.send(pkt)
    loop.run()
    assert link.packets_carried == 1
    assert link.bytes_carried == pkt.wire_bytes


def test_utilization_counts_only_completed_transmission():
    # Regression: utilization divided *all* bytes ever enqueued by
    # elapsed time, counting bytes still queued/being serialized, so a
    # deep backlog reported utilization > 1.0.
    loop = EventLoop()
    link = Link(loop, rate_bps=8_000.0, delay_s=0.0)  # 1000 B/s
    link.deliver = lambda p: None
    # Two packets of 1 s serialization each, both enqueued at t=0.
    link.send(make_packet(nbytes=1000 - HEADER_BYTES, seq=0))
    link.send(make_packet(nbytes=1000 - HEADER_BYTES, seq=1))
    loop.run_until(1.0)
    # At t=1 only the first packet has finished serializing; the old
    # code reported 2000 B * 8 / 8000 / 1 s = 2.0 here.
    assert link.utilization_until_now() == pytest.approx(1.0)
    loop.run_until(4.0)
    # Busy 2 s out of 4 s elapsed.
    assert link.utilization_until_now() == pytest.approx(0.5)


def test_utilization_is_clamped_and_zero_at_start():
    loop = EventLoop()
    link = Link(loop, rate_bps=8_000.0, delay_s=0.0)
    link.deliver = lambda p: None
    # Regression: at now == _busy_until == 0 the old truthiness guard
    # (`if busy`) took the wrong branch; enqueue at t=0 and ask
    # immediately — before any time has elapsed there is no utilization.
    link.send(make_packet(nbytes=1000 - HEADER_BYTES))
    assert link.utilization_until_now() == 0.0
    loop.run()
    assert 0.0 <= link.utilization_until_now() <= 1.0


def test_queue_delay_now_reflects_backlog():
    loop = EventLoop()
    link = Link(loop, rate_bps=8_000.0, delay_s=0.0)
    link.deliver = lambda p: None
    link.send(make_packet(nbytes=1000 - HEADER_BYTES))
    assert link.queue_delay_now == pytest.approx(1.0)


class TestTokenBucketShaper:
    def test_burst_passes_then_paces(self):
        loop = EventLoop()
        shaper = TokenBucketShaper(rate_bps=8_000.0, bucket_bytes=1000)
        link = Link(loop, rate_bps=8e9, delay_s=0.0, shaper=shaper)
        arrivals = []
        link.deliver = lambda p: arrivals.append(loop.now)
        # First 1000-wire-byte packet passes immediately (bucket full);
        # second must wait for tokens at 1000 B/s.
        link.send(make_packet(nbytes=1000 - HEADER_BYTES))
        link.send(make_packet(nbytes=1000 - HEADER_BYTES))
        loop.run()
        assert arrivals[0] == pytest.approx(0.0, abs=1e-5)
        assert arrivals[1] == pytest.approx(1.0, rel=1e-3)

    def test_long_run_rate_limited(self):
        loop = EventLoop()
        rate = 1_000_000.0  # 1 Mbps
        shaper = TokenBucketShaper(rate_bps=rate, bucket_bytes=10_000)
        link = Link(loop, rate_bps=1e9, delay_s=0.0, shaper=shaper)
        arrivals = []
        link.deliver = lambda p: arrivals.append(loop.now)
        total_wire = 0
        for i in range(200):
            pkt = make_packet(nbytes=1200, seq=i)
            total_wire += pkt.wire_bytes
            link.send(pkt)
        loop.run()
        elapsed = arrivals[-1]
        effective_bps = total_wire * 8.0 / elapsed
        # Within 15% of the shaped rate (bucket burst inflates it slightly).
        assert effective_bps == pytest.approx(rate, rel=0.15)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucketShaper(rate_bps=0, bucket_bytes=100)
        with pytest.raises(ValueError):
            TokenBucketShaper(rate_bps=100, bucket_bytes=0)


class TestDeferralGapAccounting:
    """Regression: a shaper/impairment-deferred start used to inflate
    ``_busy_until`` silently, so (a) the *next* packet's wait across the
    idle gap was charged to ``link.queue`` instead of ``link.throttle``
    in the causes ledger, and (b) ``utilization_until_now`` counted the
    idle gap as pending transmission work, undercounting completed busy
    time."""

    def make_throttled_link(self, loop):
        # Wire 1000 B/s; shaper 100 B/s with a 100-byte bucket, so each
        # 100-wire-byte packet after the first waits ~0.9 s on tokens.
        return Link(
            loop, rate_bps=8_000.0, delay_s=0.0,
            shaper=TokenBucketShaper(rate_bps=800.0, bucket_bytes=100),
        )

    def send_three(self, loop, link):
        for seq in range(3):
            link.send(make_packet(nbytes=100 - HEADER_BYTES, seq=seq))

    def test_gap_not_charged_to_queue(self):
        from repro import obs

        obs.deactivate()
        obs.ensure_active(causes=True)
        try:
            loop = EventLoop()
            link = self.make_throttled_link(loop)
            link.deliver = lambda p: None
            self.send_three(loop, link)
            totals = obs.active().causes.totals()
        finally:
            obs.deactivate()
        # p1: starts at 0 (full bucket), tx 0.1 s.  p2: queue-waits until
        # 0.1, then throttles until 1.0, tx to 1.1.  p3: queue-waits
        # until 1.1, throttles until 2.0.  Queue seconds are the two
        # serialization tails (0.1 each); the 2 x 0.9 s token waits are
        # throttle.  The old code charged p3's wait across p2's idle
        # throttle gap (0.9 s) to link.queue as well.
        assert totals["link.throttle"] == pytest.approx(1.8)
        assert totals["link.queue"] == pytest.approx(0.2)

    def test_utilization_excludes_idle_gap(self):
        loop = EventLoop()
        link = self.make_throttled_link(loop)
        link.deliver = lambda p: None
        self.send_three(loop, link)
        # Horizon: tx [0, 0.1], idle gap (0.1, 1.0), tx [1.0, 1.1], idle
        # gap (1.1, 2.0), tx [2.0, 2.1].
        loop.run_until(1.1)
        # Completed transmission by 1.1 s: 0.2 s of actual wire time.
        # The old code computed pending = busy_until - now = 1.0 s
        # (including the 0.9 s idle gap), clamping utilization to 0.
        assert link.utilization_until_now() == pytest.approx(0.2 / 1.1)
        loop.run_until(2.1)
        assert link.utilization_until_now() == pytest.approx(0.3 / 2.1)

    def test_unshaped_link_accounting_unchanged(self):
        loop = EventLoop()
        link = Link(loop, rate_bps=8_000.0, delay_s=0.0)
        link.deliver = lambda p: None
        link.send(make_packet(nbytes=1000 - HEADER_BYTES, seq=0))
        link.send(make_packet(nbytes=1000 - HEADER_BYTES, seq=1))
        # Back-to-back transmissions keep the wire busy 0-2 s.
        loop.run_until(1.5)
        assert link.utilization_until_now() == pytest.approx(1.0)
        loop.run_until(4.0)
        assert link.utilization_until_now() == pytest.approx(2.0 / 4.0)
        assert not link._gaps
