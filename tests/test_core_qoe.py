"""Tests for the SessionQoE record and helpers."""

import pytest

from repro.core.qoe import SessionQoE, StallEvent, combine_sessions, stall_ratio


def make_qoe(**overrides):
    defaults = dict(
        broadcast_id="b" * 13,
        protocol="rtmp",
        device="galaxy-s4",
        bandwidth_limit_mbps=100.0,
        watch_seconds=60.0,
        join_time_s=2.0,
        playback_s=55.0,
        stalls=[StallEvent(start=10.0, duration=3.0)],
    )
    defaults.update(overrides)
    return SessionQoE(**defaults)


def test_stall_derivations():
    qoe = make_qoe()
    assert qoe.stall_count == 1
    assert qoe.total_stall_s == 3.0
    assert qoe.mean_stall_s == 3.0
    assert qoe.stall_ratio == pytest.approx(3.0 / 58.0)


def test_no_stalls():
    qoe = make_qoe(stalls=[], playback_s=58.0)
    assert qoe.stall_ratio == 0.0
    assert qoe.mean_stall_s == 0.0


def test_consistency_check():
    assert make_qoe().consistent()
    assert not make_qoe(join_time_s=10.0).consistent()


def test_delivery_latency_mean():
    qoe = make_qoe(delivery_latency_samples=[0.1, 0.2, 0.3])
    assert qoe.delivery_latency_s == pytest.approx(0.2)
    assert make_qoe().delivery_latency_s is None


def test_combine_sessions():
    a = [make_qoe(device="galaxy-s3")]
    b = [make_qoe(), make_qoe()]
    merged = combine_sessions([a, b])
    assert len(merged) == 3
    assert merged[0].device == "galaxy-s3"


def test_stall_ratio_function_edge_cases():
    assert stall_ratio(0.0, 0.0) == 0.0
    assert stall_ratio(30.0, 30.0) == 0.5
    with pytest.raises(ValueError):
        stall_ratio(1.0, -1.0)


def test_multi_stall_mean():
    qoe = make_qoe(stalls=[StallEvent(5.0, 2.0), StallEvent(20.0, 4.0)],
                   playback_s=52.0)
    assert qoe.stall_count == 2
    assert qoe.mean_stall_s == 3.0
