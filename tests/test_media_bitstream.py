"""Round-trip and robustness tests for the elementary-stream format."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.media.bitstream import (
    FrameStreamParser,
    encode_audio_frame,
    encode_video_frame,
    parse_stream,
)
from repro.media.content import CONTENT_PROFILES, ContentProcess
from repro.media.encoder import EncoderSettings, VideoEncoder
from repro.media.frames import AudioFrame, EncodedFrame


def video_frame(**overrides):
    defaults = dict(
        index=0, pts=1.5, dts=1.4, frame_type="P", nbytes=333, qp=31.5,
        complexity=1.0, ntp_timestamp=None,
    )
    defaults.update(overrides)
    return EncodedFrame(**defaults)


def test_video_roundtrip_plain():
    frame = video_frame()
    parsed = parse_stream(encode_video_frame(frame))
    assert len(parsed) == 1
    out = parsed[0]
    assert out.frame_type == "P"
    assert out.nbytes == 333
    assert out.pts == pytest.approx(1.5)
    assert out.dts == pytest.approx(1.4)
    assert out.qp == pytest.approx(31.5, abs=1e-4)
    assert out.ntp_timestamp is None


def test_video_roundtrip_with_ntp():
    frame = video_frame(ntp_timestamp=1234567.25)
    out = parse_stream(encode_video_frame(frame))[0]
    assert out.ntp_timestamp == pytest.approx(1234567.25)


def test_audio_roundtrip():
    frame = AudioFrame(index=0, pts=0.5, nbytes=100)
    out = parse_stream(encode_audio_frame(frame))[0]
    assert isinstance(out, AudioFrame)
    assert out.nbytes == 100
    assert out.pts == pytest.approx(0.5)


def test_mixed_stream_order_preserved():
    stream = (
        encode_video_frame(video_frame(frame_type="I"))
        + encode_audio_frame(AudioFrame(0, 0.1, 50))
        + encode_video_frame(video_frame(frame_type="B", pts=2.0))
    )
    parsed = parse_stream(stream)
    kinds = [type(f).__name__ for f in parsed]
    assert kinds == ["EncodedFrame", "AudioFrame", "EncodedFrame"]


def test_incremental_feed_any_chunking():
    stream = b"".join(
        encode_video_frame(video_frame(pts=float(i), nbytes=100 + i)) for i in range(10)
    )
    parser = FrameStreamParser()
    out = []
    for i in range(0, len(stream), 7):  # awkward chunk size
        out.extend(parser.feed(stream[i : i + 7]))
    assert len(out) == 10
    assert parser.pending_bytes == 0


@given(st.integers(min_value=1, max_value=4000), st.sampled_from(["I", "P", "B"]))
@settings(max_examples=50)
def test_roundtrip_property(nbytes, frame_type):
    frame = video_frame(nbytes=nbytes, frame_type=frame_type)
    out = parse_stream(encode_video_frame(frame))[0]
    assert out.nbytes == nbytes
    assert out.frame_type == frame_type


def test_corrupt_magic_raises():
    with pytest.raises(ValueError):
        parse_stream(b"\x00\x01\x02")


def test_trailing_garbage_detected():
    data = encode_video_frame(video_frame()) + b"\xf1\x00"  # truncated header
    with pytest.raises(ValueError):
        parse_stream(data)


def test_full_encoder_output_roundtrips():
    settings = EncoderSettings(target_bps=300_000.0)
    content = ContentProcess(CONTENT_PROFILES["static_talker"], random.Random(5))
    frames = VideoEncoder(settings, content, random.Random(6)).encode_all(10.0)
    stream = b"".join(encode_video_frame(f) for f in frames)
    parsed = parse_stream(stream)
    assert len(parsed) == len(frames)
    assert [f.frame_type for f in parsed] == [f.frame_type for f in frames]
    assert [f.nbytes for f in parsed] == [f.nbytes for f in frames]
