"""Tests for process-parallel session execution (repro.core.parallel).

The headline guarantee: a parallel study batch is *bit-identical* to the
serial one — same sessions, same order, same bytes — because sampling is
serial and each session is hermetic given its setup.
"""

import pytest

from repro import obs
from repro.automation.devices import GALAXY_S3
from repro.core.config import StudyConfig
from repro.core.parallel import chunk_bounds, run_sessions, run_tasks
from repro.core.session import SessionSetup
from repro.core.study import AutomatedViewingStudy
from repro.obs.metrics import MetricsRegistry
from repro.service.selection import DeliveryProtocol

SEED = 4242
N_SESSIONS = 4


def run_study(workers):
    study = AutomatedViewingStudy(StudyConfig(seed=SEED))
    return study.run_batch(N_SESSIONS, workers=workers)


@pytest.fixture(scope="module")
def serial_dataset():
    return run_study(workers=1)


@pytest.mark.parametrize("workers", [2, 4])
def test_parallel_dataset_bit_identical_to_serial(serial_dataset, workers):
    parallel = run_study(workers=workers)
    assert parallel.sessions == serial_dataset.sessions
    assert parallel.avatar_bytes == serial_dataset.avatar_bytes
    assert parallel.down_bytes == serial_dataset.down_bytes
    assert parallel.shortfall == serial_dataset.shortfall


FAULT_PLAN_SPEC = "loss=0.02,jitter=0.005,ingest=0.03:1:2,api5xx=0.1"


def run_faulted_study(workers):
    from repro.faults import FaultPlan

    study = AutomatedViewingStudy(
        StudyConfig(seed=SEED, faults=FaultPlan.parse(FAULT_PLAN_SPEC))
    )
    return study.run_batch(N_SESSIONS, workers=workers)


@pytest.fixture(scope="module")
def serial_faulted_dataset():
    return run_faulted_study(workers=1)


@pytest.mark.parametrize("workers", [2, 4])
def test_faulted_parallel_bit_identical_to_serial(serial_faulted_dataset, workers):
    """Fault plans pickle into the workers and replay bit-identically:
    fault randomness is per-session child streams, never shared state."""
    parallel = run_faulted_study(workers=workers)
    assert parallel.sessions == serial_faulted_dataset.sessions
    assert parallel.avatar_bytes == serial_faulted_dataset.avatar_bytes
    assert parallel.down_bytes == serial_faulted_dataset.down_bytes
    assert parallel.shortfall == serial_faulted_dataset.shortfall
    # The plan was live, not a no-op: fault bookkeeping reached the QoE.
    assert any(
        s.api_retries or s.transport_retries or s.disconnects or s.fault_events
        for s in parallel.sessions
    )


def test_parallel_metrics_fold_into_parent():
    study = AutomatedViewingStudy(StudyConfig(seed=SEED))
    with obs.session(metrics=True, tracing=False, profiling=False) as telemetry:
        ds = study.run_batch(N_SESSIONS, workers=2)
        counter = telemetry.metrics.get("study_sessions_total", limit="100")
        assert counter is not None
        assert counter.value == float(len(ds.sessions))
        # The parent itself only records sampling-phase counters; any
        # histogram observation in its registry must have been merged in
        # from a worker snapshot.
        histogram_observations = sum(
            child["count"]
            for family in telemetry.metrics.snapshot()["families"]
            if family["kind"] == "histogram"
            for child in family["children"]
        )
        assert histogram_observations > 0


def test_worker_crash_propagates_to_parent():
    # A poisoned setup must fail the batch loudly in the parent (via
    # Future.result()), not hang the pool or silently drop the session.
    poisoned = SessionSetup(
        broadcast=None,
        age_at_join=10.0,
        protocol=DeliveryProtocol.RTMP,
        device=GALAXY_S3,
        seed=1,
    )
    with pytest.raises((AttributeError, TypeError)):
        run_sessions([poisoned], study_seed=SEED, workers=2)


def _poisoned_setup():
    return SessionSetup(
        broadcast=None,
        age_at_join=10.0,
        protocol=DeliveryProtocol.RTMP,
        device=GALAXY_S3,
        seed=1,
    )


def test_worker_exception_carries_the_failing_cell_index():
    """The re-raised exception names the *global* index of the poisoned
    setup — an instance attribute set in the worker, so it must survive
    the pickle trip — and keeps the remote traceback chained."""
    study = AutomatedViewingStudy(StudyConfig(seed=SEED, watch_seconds=4.0))
    setups = []
    while len(setups) < 9:
        setup = study._next_setup(100.0)
        if setup is not None:
            setups.append(setup)
    poison_at = 3  # with 9 setups and 2 workers, chunks are 2 wide:
    setups[poison_at] = _poisoned_setup()  # offset 1 inside chunk [2, 4)
    with pytest.raises((AttributeError, TypeError)) as excinfo:
        run_sessions(setups, study_seed=SEED, workers=2)
    assert getattr(excinfo.value, "cell_index", None) == poison_at
    # concurrent.futures chains the worker-side traceback as the cause.
    assert excinfo.value.__cause__ is not None
    assert "_run_chunk" in str(excinfo.value.__cause__)


# ----------------------------------------------------------- run_tasks

def _triple(value):
    return value * 3


def _fail_on_negative(value):
    if value < 0:
        raise ValueError(f"bad item {value}")
    return value


def test_run_tasks_returns_results_in_input_order():
    observed = []
    results = run_tasks(
        _triple, [5, 1, 4, 2], workers=2,
        on_result=lambda index, result: observed.append((index, result)),
    )
    assert results == [15, 3, 12, 6]
    # on_result fires in submission order, which is what lets the
    # campaign runner checkpoint incrementally and deterministically.
    assert observed == [(0, 15), (1, 3), (2, 12), (3, 6)]


def test_run_tasks_exception_carries_the_task_index():
    with pytest.raises(ValueError) as excinfo:
        run_tasks(_fail_on_negative, [1, 2, -7, 4], workers=2)
    assert getattr(excinfo.value, "task_index", None) == 2
    assert excinfo.value.__cause__ is not None


def test_run_tasks_rejects_single_worker():
    with pytest.raises(ValueError):
        run_tasks(_triple, [1], workers=1)


def test_run_sessions_rejects_single_worker():
    with pytest.raises(ValueError):
        run_sessions([], study_seed=SEED, workers=1)


def test_chunk_bounds_cover_each_index_exactly_once():
    for n_items in (0, 1, 2, 5, 16, 33):
        for workers in (2, 4, 8):
            bounds = chunk_bounds(n_items, workers)
            covered = [i for start, stop in bounds for i in range(start, stop)]
            assert covered == list(range(n_items)), (n_items, workers)


def _registry(observations, counter_by, gauge_to):
    registry = MetricsRegistry()
    registry.counter("chunk_sessions_total", limit="1").inc(counter_by)
    registry.gauge("chunk_progress", limit="1").set(gauge_to)
    histogram = registry.histogram("chunk_join_seconds")
    for value in observations:
        histogram.observe(value)
    return registry


def test_metrics_merge_is_associative():
    snaps = [
        _registry([0.1, 0.4], 2.0, 3.0).snapshot(),
        _registry([2.0], 5.0, 1.0).snapshot(),
        _registry([0.02, 7.5, 0.3], 1.0, 9.0).snapshot(),
    ]
    # (A + B) + C
    ab = MetricsRegistry()
    ab.merge_from(snaps[0])
    ab.merge_from(snaps[1])
    left = MetricsRegistry()
    left.merge_from(ab.snapshot())
    left.merge_from(snaps[2])
    # A + (B + C)
    bc = MetricsRegistry()
    bc.merge_from(snaps[1])
    bc.merge_from(snaps[2])
    right = MetricsRegistry()
    right.merge_from(snaps[0])
    right.merge_from(bc.snapshot())
    assert left.snapshot() == right.snapshot()


def test_metrics_merge_is_commutative():
    snaps = [
        _registry([0.5], 1.0, 2.0).snapshot(),
        _registry([0.25, 3.0], 4.0, 1.0).snapshot(),
    ]
    forward = MetricsRegistry()
    forward.merge_from(snaps[0])
    forward.merge_from(snaps[1])
    backward = MetricsRegistry()
    backward.merge_from(snaps[1])
    backward.merge_from(snaps[0])
    assert forward.snapshot() == backward.snapshot()
