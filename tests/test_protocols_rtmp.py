"""Tests for RTMP chunking and the push-session glue."""

import pytest

from repro.media.frames import AudioFrame, EncodedFrame
from repro.netsim.connection import Connection
from repro.netsim.events import EventLoop
from repro.netsim.topology import Network
from repro.protocols import rtmp
from repro.util.units import MBPS


def vframe(**overrides):
    defaults = dict(index=0, pts=0.2, dts=0.2, frame_type="P", nbytes=900,
                    qp=31.0, complexity=1.0)
    defaults.update(overrides)
    return EncodedFrame(**defaults)


class TestChunking:
    def test_small_message_single_chunk(self):
        msg = rtmp.RtmpMessage(rtmp.RtmpMessageType.VIDEO, 100, b"x" * 50)
        data = rtmp.chunk_message(msg)
        assert len(data) == 12 + 50

    def test_large_message_has_continuations(self):
        payload = b"y" * 10_000
        msg = rtmp.RtmpMessage(rtmp.RtmpMessageType.VIDEO, 0, payload)
        data = rtmp.chunk_message(msg, chunk_size=4096)
        # 12-byte fmt0 header + 2 single-byte fmt3 headers.
        assert len(data) == 12 + 10_000 + 2

    def test_parser_roundtrip(self):
        msg = rtmp.RtmpMessage(rtmp.RtmpMessageType.AUDIO, 777, b"z" * 9000)
        parser = rtmp.ChunkParser(chunk_size=4096)
        out = parser.feed(rtmp.chunk_message(msg, chunk_size=4096))
        assert len(out) == 1
        assert out[0].msg_type == rtmp.RtmpMessageType.AUDIO
        assert out[0].timestamp_ms == 777
        assert out[0].payload == msg.payload
        assert parser.pending_bytes == 0

    def test_parser_incremental_feed(self):
        msg = rtmp.RtmpMessage(rtmp.RtmpMessageType.VIDEO, 5, b"a" * 5000)
        data = rtmp.chunk_message(msg)
        parser = rtmp.ChunkParser()
        out = []
        for i in range(0, len(data), 100):
            out.extend(parser.feed(data[i : i + 100]))
        assert len(out) == 1
        assert out[0].payload == msg.payload

    def test_interleaved_chunk_streams(self):
        video = rtmp.RtmpMessage(rtmp.RtmpMessageType.VIDEO, 1, b"v" * 6000,
                                 chunk_stream_id=4)
        audio = rtmp.RtmpMessage(rtmp.RtmpMessageType.AUDIO, 2, b"a" * 100,
                                 chunk_stream_id=5)
        vdata = rtmp.chunk_message(video, chunk_size=4096)
        adata = rtmp.chunk_message(audio, chunk_size=4096)
        # Interleave: first video chunk, whole audio message, video rest.
        first_video = vdata[: 12 + 4096]
        rest_video = vdata[12 + 4096 :]
        parser = rtmp.ChunkParser(chunk_size=4096)
        out = parser.feed(first_video + adata + rest_video)
        assert [m.msg_type for m in out] == [
            rtmp.RtmpMessageType.AUDIO,
            rtmp.RtmpMessageType.VIDEO,
        ]

    def test_set_chunk_size_honoured(self):
        import struct

        set_size = rtmp.RtmpMessage(
            rtmp.RtmpMessageType.SET_CHUNK_SIZE, 0, struct.pack(">I", 128),
            chunk_stream_id=2,
        )
        big = rtmp.RtmpMessage(rtmp.RtmpMessageType.VIDEO, 0, b"q" * 300)
        parser = rtmp.ChunkParser(chunk_size=4096)
        data = rtmp.chunk_message(set_size, chunk_size=4096) + rtmp.chunk_message(
            big, chunk_size=128
        )
        out = parser.feed(data)
        assert len(out) == 2
        assert out[1].payload == b"q" * 300

    def test_unknown_format3_rejected(self):
        parser = rtmp.ChunkParser()
        with pytest.raises(ValueError):
            parser.feed(bytes([(3 << 6) | 9]) + b"xx")

    def test_message_validation(self):
        with pytest.raises(ValueError):
            rtmp.RtmpMessage(rtmp.RtmpMessageType.VIDEO, -1, b"")
        with pytest.raises(ValueError):
            rtmp.RtmpMessage(rtmp.RtmpMessageType.VIDEO, 0, b"", chunk_stream_id=64)


class TestMediaMessages:
    def test_video_message_roundtrip(self):
        frame = vframe(frame_type="I", nbytes=1234)
        out = rtmp.media_frame_of(rtmp.video_message(frame))
        assert out.frame_type == "I"
        assert out.nbytes == 1234

    def test_audio_message_roundtrip(self):
        frame = AudioFrame(index=0, pts=3.0, nbytes=77)
        out = rtmp.media_frame_of(rtmp.audio_message(frame))
        assert out.nbytes == 77

    def test_media_frame_of_rejects_commands(self):
        msg = rtmp.RtmpMessage(rtmp.RtmpMessageType.COMMAND_AMF0, 0, b"connect")
        with pytest.raises(ValueError):
            rtmp.media_frame_of(msg)


class TestPushSession:
    def _session(self, byte_fidelity=False):
        loop = EventLoop()
        net = Network(loop)
        server, phone = net.host("ingest"), net.host("phone")
        net.duplex(server, phone, rate_bps=20 * MBPS, delay_s=0.02)
        fwd, rev = net.duplex_paths("ingest", "phone")
        received = []
        receiver = rtmp.RtmpReceiver(lambda frame, t: received.append((frame, t)))
        conn = Connection(loop, fwd, rev, on_message=receiver.on_message)
        return loop, rtmp.RtmpPushSession(conn, byte_fidelity=byte_fidelity), received

    def test_frames_arrive_promptly(self):
        loop, session, received = self._session()
        loop.schedule(1.0, lambda: session.push_frame(vframe()))
        loop.run()
        assert len(received) == 1
        frame, t = received[0]
        assert frame.frame_type == "P"
        # Push latency: ~20 ms propagation + tiny serialization.
        assert 0.02 < t - 1.0 < 0.05

    def test_byte_fidelity_frames_carry_chunked_bytes(self):
        loop, session, received = self._session(byte_fidelity=True)
        session.push_frame(vframe(nbytes=5000))
        loop.run()
        assert len(received) == 1

    def test_session_counters(self):
        loop, session, received = self._session()
        session.push_frame(vframe())
        session.push_frame(AudioFrame(index=0, pts=0.0, nbytes=90))
        loop.run()
        assert session.frames_pushed == 2
        assert session.bytes_pushed > 0
        assert len(received) == 2
