"""Tests for the MPEG-TS muxer/demuxer."""

import random

import pytest

from repro.media.audio import AacEncoderModel
from repro.media.content import CONTENT_PROFILES, ContentProcess
from repro.media.encoder import EncoderSettings, VideoEncoder
from repro.media.frames import AudioFrame, EncodedFrame
from repro.protocols import mpegts


def vframe(**overrides):
    defaults = dict(index=0, pts=0.5, dts=0.4, frame_type="I", nbytes=2000,
                    qp=28.0, complexity=1.0)
    defaults.update(overrides)
    return EncodedFrame(**defaults)


def test_crc32_mpeg_known_vector():
    # CRC-32/MPEG-2 of "123456789" is 0x0376E6E7 (standard check value).
    assert mpegts.crc32_mpeg(b"123456789") == 0x0376E6E7


def test_segment_is_packet_aligned():
    data = mpegts.mux_segment([vframe()])
    assert len(data) % mpegts.TS_PACKET_SIZE == 0
    assert all(
        data[i] == mpegts.SYNC_BYTE for i in range(0, len(data), mpegts.TS_PACKET_SIZE)
    )


def test_pat_pmt_recovered():
    result = mpegts.demux_segment(mpegts.mux_segment([vframe()]))
    assert result.pmt_streams == {
        mpegts.PID_VIDEO: mpegts.STREAM_TYPE_AVC,
        mpegts.PID_AUDIO: mpegts.STREAM_TYPE_AAC,
    }


def test_video_roundtrip():
    frame = vframe(nbytes=5000, frame_type="P", qp=33.25)
    result = mpegts.demux_segment(mpegts.mux_segment([frame]))
    assert len(result.video_frames) == 1
    out = result.video_frames[0]
    assert out.nbytes == 5000
    assert out.frame_type == "P"
    assert out.qp == pytest.approx(33.25, abs=1e-3)
    assert out.pts == pytest.approx(0.5)
    assert out.dts == pytest.approx(0.4)


def test_audio_roundtrip():
    audio = [AudioFrame(0, 0.1, 80), AudioFrame(1, 0.2, 85)]
    result = mpegts.demux_segment(mpegts.mux_segment([vframe()], audio))
    assert [a.nbytes for a in result.audio_frames] == [80, 85]


def test_continuity_counters_clean():
    video = [vframe(pts=i * 0.1, dts=i * 0.1, nbytes=3000 + i) for i in range(20)]
    result = mpegts.demux_segment(mpegts.mux_segment(video))
    assert result.continuity_errors == 0
    assert len(result.video_frames) == 20


def test_unaligned_segment_rejected():
    with pytest.raises(ValueError):
        mpegts.demux_segment(bytes(100))


def test_lost_sync_detected():
    data = bytearray(mpegts.mux_segment([vframe()]))
    data[mpegts.TS_PACKET_SIZE] = 0x00  # corrupt second packet's sync byte
    with pytest.raises(ValueError):
        mpegts.demux_segment(bytes(data))


def test_pts_encoding_roundtrip_33_bits():
    for value in (0, 1, 90_000, (1 << 33) - 1):
        encoded = mpegts._encode_pts(0b0010, value)
        assert mpegts._decode_pts(encoded) == value


def test_pes_timestamps_extractable():
    pes = mpegts.pes_packet(mpegts.STREAM_ID_VIDEO, b"payload", pts_s=2.5, dts_s=2.4)
    pts, dts = mpegts.extract_timestamps(pes)
    assert pts == pytest.approx(2.5, abs=1e-4)
    assert dts == pytest.approx(2.4, abs=1e-4)


def test_pes_pts_only_when_equal():
    pes = mpegts.pes_packet(mpegts.STREAM_ID_AUDIO, b"x", pts_s=1.0, dts_s=1.0)
    pts, dts = mpegts.extract_timestamps(pes)
    assert pts == pytest.approx(1.0, abs=1e-4)
    assert dts is None


def test_full_segment_roundtrip_with_encoder():
    settings = EncoderSettings(target_bps=300_000.0)
    content = ContentProcess(CONTENT_PROFILES["sports_tv"], random.Random(4))
    video = VideoEncoder(settings, content, random.Random(5)).encode_all(4.0)
    audio = AacEncoderModel(random.Random(6), nominal_bps=64_000.0).encode_all(4.0)
    result = mpegts.demux_segment(mpegts.mux_segment(video, audio))
    assert len(result.video_frames) == len(video)
    assert len(result.audio_frames) == len(audio)
    assert result.continuity_errors == 0
    got_ntp = [f.ntp_timestamp for f in result.video_frames if f.ntp_timestamp is not None]
    want_ntp = [f.ntp_timestamp for f in video if f.ntp_timestamp is not None]
    assert got_ntp == pytest.approx(want_ntp)


def test_large_frame_spans_many_packets():
    frame = vframe(nbytes=100_000)
    data = mpegts.mux_segment([frame])
    assert len(data) // mpegts.TS_PACKET_SIZE > 500
    result = mpegts.demux_segment(data)
    assert result.video_frames[0].nbytes == 100_000
