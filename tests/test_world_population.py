"""Unit tests for the mesoscale world: popularity, cohorts, sampling."""

import math

import pytest

from repro.core.config import StudyConfig
from repro.core.popstudy import PopulationStudy
from repro.service.selection import DeliveryProtocol
from repro.world.cohorts import (
    BANDWIDTH_CLASSES,
    build_cohorts,
    cohort_aggregate,
    effective_stream_rate_bps,
    peak_viewers,
)
from repro.world.popularity import (
    PopulationParameters,
    Population,
    apportion,
    build_broadcast,
    sample_population,
)
from repro.world.sampler import (
    END_MARGIN_S,
    MIN_JOIN_AGE_S,
    joinable_min_duration_s,
    plan_expansions,
)
from repro.world.shards import shard_bounds

SEED = 2016


class TestApportionment:
    def test_sums_to_total(self):
        for weights in ([1.0], [3.0, 1.0], [0.2] * 7, [5.0, 0.0, 2.5]):
            for total in (0, 1, 10, 997):
                counts = apportion(total, weights)
                assert sum(counts) == total

    def test_proportionality(self):
        counts = apportion(100, [3.0, 1.0])
        assert counts == [75, 25]

    def test_zero_weight_gets_nothing(self):
        counts = apportion(50, [1.0, 0.0, 1.0])
        assert counts[1] == 0

    def test_all_zero_weights_degenerate(self):
        assert apportion(7, [0.0, 0.0, 0.0]) == [7, 0, 0]

    def test_empty_weights(self):
        assert apportion(5, []) == []

    def test_negative_total_rejected(self):
        with pytest.raises(ValueError):
            apportion(-1, [1.0])


class TestPopulation:
    def test_viewer_budget_is_exact(self):
        population = sample_population(
            SEED, PopulationParameters(viewers=12_345)
        )
        assert population.total_viewers == 12_345

    def test_mean_audience_matches_empirical(self):
        params = PopulationParameters(viewers=200_000)
        population = sample_population(SEED, params)
        empirical = population.total_viewers / population.n_broadcasters
        assert empirical == pytest.approx(params.mean_audience(), rel=0.15)

    def test_zero_audience_share_near_nominal(self):
        params = PopulationParameters(viewers=50_000)
        population = sample_population(SEED, params)
        share = population.zero_audience_count() / population.n_broadcasters
        assert share == pytest.approx(params.zero_viewer_fraction, abs=0.03)

    def test_heavy_tail_concentration(self):
        population = sample_population(
            SEED, PopulationParameters(viewers=50_000)
        )
        # The defining mesoscale property: a thin head carries a fat
        # share of all viewers.
        assert population.top_share(0.01) > 0.25
        assert population.top_share(0.10) > population.top_share(0.01)

    def test_audience_cdf_monotone(self):
        population = sample_population(
            SEED, PopulationParameters(viewers=5_000)
        )
        grid = [0, 1, 5, 20, 100, 10_000]
        values = [population.audience_cdf(x) for x in grid]
        assert values == sorted(values)
        assert values[-1] == 1.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            PopulationParameters(viewers=0)
        with pytest.raises(ValueError):
            PopulationParameters(sample_budget=-1)
        with pytest.raises(ValueError):
            PopulationParameters(zero_viewer_fraction=1.0)
        with pytest.raises(ValueError):
            Population(SEED, PopulationParameters(),
                       [1, 2, 3]).top_share(0.0)

    def test_build_broadcast_deterministic(self):
        a = build_broadcast(SEED, 17, audience=40, min_duration_s=30.0)
        b = build_broadcast(SEED, 17, audience=40, min_duration_s=30.0)
        assert a.broadcast_id == b.broadcast_id
        assert a.duration_s == b.duration_s
        assert a.mean_viewers == 40.0
        assert a.duration_s >= 30.0


class TestCohorts:
    def _broadcast(self, audience=50):
        return build_broadcast(SEED, 3, audience=audience,
                               min_duration_s=120.0)

    def test_members_sum_to_audience(self):
        broadcast = self._broadcast(audience=37)
        cohorts = build_cohorts(broadcast, 3, 37, hls_viewer_threshold=100)
        assert sum(c.members for c in cohorts) == 37

    def test_zero_audience_no_cohorts(self):
        broadcast = self._broadcast()
        assert build_cohorts(broadcast, 3, 0, hls_viewer_threshold=100) == []

    def test_protocol_follows_peak_threshold(self):
        broadcast = self._broadcast(audience=500)
        peak = peak_viewers(broadcast)
        hls = build_cohorts(broadcast, 3, 500, hls_viewer_threshold=peak / 2)
        rtmp = build_cohorts(broadcast, 3, 500, hls_viewer_threshold=peak * 2)
        assert {c.protocol for c in hls} == {DeliveryProtocol.HLS}
        assert {c.protocol for c in rtmp} == {DeliveryProtocol.RTMP}

    def test_aggregate_member_seconds_tracks_audience_curve(self):
        broadcast = self._broadcast(audience=60)
        cohorts = build_cohorts(broadcast, 3, 60, hls_viewer_threshold=1e9)
        total = sum(
            cohort_aggregate(broadcast, c, watch_seconds=60.0).member_seconds
            for c in cohorts
        )
        # The audience curve integrates to ~ mean_viewers * duration.
        assert total == pytest.approx(60 * broadcast.duration_s, rel=0.15)

    def test_starved_class_stalls_fluidly(self):
        broadcast = self._broadcast(audience=400)
        cohorts = build_cohorts(broadcast, 3, 400, hls_viewer_threshold=1)
        rate_bps = effective_stream_rate_bps(broadcast)
        for cohort in cohorts:
            aggregate = cohort_aggregate(broadcast, cohort, watch_seconds=60.0)
            capacity_bps = cohort.bandwidth.downlink_mbps * 1e6
            if capacity_bps >= rate_bps:
                assert aggregate.stall_seconds == 0.0
            else:
                expected = 1.0 - capacity_bps / rate_bps
                assert aggregate.stall_ratio() == pytest.approx(expected)

    def test_joins_and_leaves_balance(self):
        broadcast = self._broadcast(audience=80)
        cohort = build_cohorts(broadcast, 3, 80, hls_viewer_threshold=1e9)[0]
        aggregate = cohort_aggregate(broadcast, cohort, watch_seconds=60.0)
        # Everyone who joins eventually leaves (the end drains the room).
        assert aggregate.joins == pytest.approx(aggregate.leaves)
        assert aggregate.peak_members <= cohort.members * 3

    def test_class_weights_cover_population(self):
        assert sum(c.weight for c in BANDWIDTH_CLASSES) == pytest.approx(1.0)

    def test_invalid_watch_rejected(self):
        broadcast = self._broadcast()
        cohort = build_cohorts(broadcast, 3, 50, hls_viewer_threshold=1e9)[0]
        with pytest.raises(ValueError):
            cohort_aggregate(broadcast, cohort, watch_seconds=0.0)


class TestSampler:
    def _cohort(self, members=200):
        broadcast = build_broadcast(SEED, 5, audience=members,
                                    min_duration_s=600.0)
        cohorts = build_cohorts(broadcast, 5, members, hls_viewer_threshold=10)
        return max(cohorts, key=lambda c: c.members)

    def test_zero_rate_empty(self):
        assert plan_expansions(SEED, self._cohort(), 0.0, 10.0) == []

    def test_requests_are_deterministic(self):
        cohort = self._cohort()
        a = plan_expansions(SEED, cohort, 0.05, 10.0)
        b = plan_expansions(SEED, cohort, 0.05, 10.0)
        assert a == b
        assert a, "expected a non-empty sample at 5% of 100+ members"

    def test_request_fields_within_bounds(self):
        cohort = self._cohort()
        for request in plan_expansions(SEED, cohort, 0.1, 10.0):
            assert request.broadcaster_index == cohort.broadcaster_index
            assert request.protocol_value == cohort.protocol.value
            assert request.device_name in ("galaxy-s3", "galaxy-s4")
            assert request.age_at_join_s >= MIN_JOIN_AGE_S
            assert (request.age_at_join_s
                    <= cohort.duration_s - 10.0 - END_MARGIN_S + 1e-9)

    def test_expected_count_realized_within_one(self):
        cohort = self._cohort()
        expected = cohort.members * 0.04
        count = len(plan_expansions(SEED, cohort, 0.04, 10.0))
        assert abs(count - expected) <= 1.0

    def test_joinable_floor_covers_window(self):
        assert joinable_min_duration_s(60.0) == pytest.approx(
            MIN_JOIN_AGE_S + 60.0 + END_MARGIN_S)


class TestShardBounds:
    def test_cover_each_index_exactly_once(self):
        for n_items in (0, 1, 2, 5, 16, 33, 1000):
            for shards in (1, 2, 4, 7, 50):
                bounds = shard_bounds(n_items, shards)
                covered = [i for start, stop in bounds
                           for i in range(start, stop)]
                assert covered == list(range(n_items)), (n_items, shards)

    def test_shard_count_never_exceeds_request(self):
        assert len(shard_bounds(10, 100)) <= 10
        assert len(shard_bounds(0, 4)) == 0


class TestPopulationStudy:
    def test_sampled_sessions_match_requests(self):
        study = PopulationStudy(
            StudyConfig(seed=SEED, watch_seconds=4.0),
            PopulationParameters(viewers=400, sample_budget=5),
        )
        result = study.run()
        assert len(result.sampled.sessions) == len(result.world.requests)
        assert result.population.total_viewers == 400
        for qoe, request in zip(result.sampled.sessions,
                                result.world.requests):
            assert qoe.protocol == request.protocol_value
            assert qoe.device == request.device_name
            assert qoe.bandwidth_limit_mbps == request.bandwidth_limit_mbps

    def test_totals_cover_both_protocols(self):
        study = PopulationStudy(
            StudyConfig(seed=SEED, watch_seconds=4.0),
            PopulationParameters(viewers=2_000, sample_budget=0),
        )
        result = study.run()
        assert set(result.totals) == {"rtmp", "hls"}
        assert result.sampled.sessions == []
        for aggregate in result.totals.values():
            assert aggregate.member_seconds > 0.0
            assert 0.0 <= aggregate.stall_ratio() < 1.0
