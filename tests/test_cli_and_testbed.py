"""Tests for the CLI entry point, the session testbed and StudyConfig."""

import pytest

from repro.core.config import StudyConfig
from repro.core.testbed import (
    DELAY_FLOOR_S,
    SessionTestbed,
    TestbedConfig,
    VIEWER_LOCATION,
    path_delay_s,
)
from repro.experiments.__main__ import DRIVERS, build_parser, main
from repro.netsim.events import EventLoop
from repro.service.geo import GeoPoint
from repro.util.units import MBPS


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in DRIVERS:
            assert name in out

    def test_run_table1(self, capsys):
        assert main(["table1", "--seed", "3"]) == 0
        assert "mapGeoBroadcastFeed" in capsys.readouterr().out

    def test_run_fig7(self, capsys):
        assert main(["fig7"]) == 0
        assert "wifi (paper)" in capsys.readouterr().out

    def test_parser_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])


class TestStudyConfig:
    def test_scaled_counts(self):
        config = StudyConfig(scale=0.1)
        assert config.scaled(1000) == 100
        assert config.scaled(3, minimum=5) == 5

    def test_with_scale_copies(self):
        base = StudyConfig(scale=0.05)
        bigger = base.with_scale(1.0)
        assert bigger.scale == 1.0
        assert base.scale == 0.05
        assert bigger.seed == base.seed

    def test_limit_bps(self):
        config = StudyConfig()
        assert config.limit_bps(2.0) == pytest.approx(2e6)
        assert config.limit_bps(100.0) == config.access_bandwidth_bps


class TestPathDelay:
    def test_floor_applies(self):
        assert path_delay_s(VIEWER_LOCATION, VIEWER_LOCATION) == DELAY_FLOOR_S

    def test_monotone_in_distance(self):
        near = GeoPoint(59.0, 24.0)
        far = GeoPoint(-33.9, 151.2)
        assert path_delay_s(VIEWER_LOCATION, far) > path_delay_s(VIEWER_LOCATION, near)


class TestSessionTestbed:
    def make(self):
        loop = EventLoop()
        return loop, SessionTestbed(loop, TestbedConfig())

    def test_servers_and_streams(self):
        loop, tb = self.make()
        tb.add_server("api", GeoPoint(37.8, -122.4))
        stream = tb.stream_to("api")
        assert stream.a_host is tb.phone

    def test_duplicate_server_rejected(self):
        loop, tb = self.make()
        tb.add_server("api", GeoPoint(37.8, -122.4))
        with pytest.raises(ValueError):
            tb.add_server("api", GeoPoint(0, 0))

    def test_unknown_server_rejected(self):
        loop, tb = self.make()
        with pytest.raises(KeyError):
            tb.stream_to("nope")

    def test_rtt_scales_with_distance(self):
        loop, tb = self.make()
        tb.add_server("near", GeoPoint(60.0, 25.0))
        tb.add_server("far", GeoPoint(-33.9, 151.2))
        assert tb.rtt_to("far") > tb.rtt_to("near")

    def test_capture_taps_both_directions(self):
        loop, tb = self.make()
        directions = {r for r in ("down", "up")}
        assert len(tb.capture._taps) == 2
