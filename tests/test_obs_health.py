"""Study-health invariant monitors: unit behaviour, the zero-violation
guarantee on real (even faulted) runs, and export surfacing."""

from repro import obs
from repro.experiments.common import Workbench
from repro.faults.impair import LossSpec
from repro.faults.plan import FaultPlan
from repro.obs.health import HealthMonitor
from repro.obs.export import render_health, render_prometheus


# ----------------------------------------------------------------- unit


def test_monitor_counts_checks_and_violations():
    monitor = HealthMonitor()
    assert monitor.ok()
    assert monitor.check("inv.a", True)
    assert not monitor.check("inv.a", False, "level=-0.2")
    assert not monitor.check("inv.b", False)
    assert monitor.checks_total == 3
    assert monitor.violations == {"inv.a": 1, "inv.b": 1}
    assert monitor.violation_count == 2
    assert not monitor.ok()
    assert monitor.samples == ["inv.a: level=-0.2", "inv.b"]


def test_monitor_caps_samples_but_not_counts():
    monitor = HealthMonitor()
    for index in range(HealthMonitor.MAX_SAMPLES + 10):
        monitor.check("inv.spam", False, f"case {index}")
    assert len(monitor.samples) == HealthMonitor.MAX_SAMPLES
    assert monitor.violations["inv.spam"] == HealthMonitor.MAX_SAMPLES + 10


def test_monitor_merge_adds_counts_and_caps_samples():
    left = HealthMonitor()
    left.check("inv.a", False, "one")
    right = HealthMonitor()
    right.check("inv.a", False, "two")
    right.check("inv.b", True)
    left.merge_from(right.snapshot())
    assert left.checks_total == 3
    assert left.violations == {"inv.a": 2}
    assert left.samples == ["inv.a: one", "inv.a: two"]


# ------------------------------------------------------------ simulation


def test_faulted_run_holds_all_invariants():
    """The monitors promote test_properties invariants to runtime; a
    faulted study must evaluate many checks and violate none."""
    obs.deactivate()
    try:
        workbench = Workbench(
            seed=91, unlimited_sessions=2, sweep_sessions_per_limit=1,
            sweep_limits_mbps=(2.0,), health=True,
            faults=FaultPlan(loss=LossSpec(rate=0.02)),
        )
        workbench.study.run_batch(2, bandwidth_limit_mbps=2.0)
        health = obs.active().health
        assert health.checks_total > 0
        assert health.ok(), health.samples
        report = render_health(obs.active())
        assert "violations: 0" in report
        assert "all invariants held." in report
    finally:
        obs.deactivate()


# --------------------------------------------------------------- exports


def test_violations_surface_in_prometheus_and_report():
    with obs.session(metrics=False, tracing=False, profiling=False,
                     health=True) as telemetry:
        telemetry.health.check("link.utilization_bounded", True)
        telemetry.health.check("player.buffer_nonnegative", False,
                               "gap=-0.3 at t=12.0")
        dump = render_prometheus(telemetry)
        assert "health_checks_total 2" in dump
        assert ('health_violations_total{invariant='
                '"player.buffer_nonnegative"} 1') in dump
        report = render_health(telemetry)
        assert "player.buffer_nonnegative" in report
        assert "gap=-0.3 at t=12.0" in report


def test_healthy_monitor_with_no_checks_stays_silent():
    with obs.session(metrics=True, tracing=False, profiling=False) as telemetry:
        telemetry.metrics.counter("x_total", "help").inc()
        assert "health_checks_total" not in render_prometheus(telemetry)
