"""Per-rule fixture snippets: each rule fires on its positive example
and stays quiet on the deterministic rewrite."""

import textwrap

from repro.lint import lint_sources


def findings_for(source, path="src/repro/netsim/snippet.py", rules=None):
    return lint_sources({path: textwrap.dedent(source)}, only_rules=rules)


def rule_ids_of(findings):
    return sorted({f.rule for f in findings})


# ---------------------------------------------------------------- D101

class TestWallClock:
    def test_time_time_flagged(self):
        findings = findings_for("""
            import time

            def arrival():
                return time.time()
        """, rules=["D101"])
        assert rule_ids_of(findings) == ["D101"]
        assert findings[0].line == 5

    def test_from_import_and_datetime_flagged(self):
        findings = findings_for("""
            from time import perf_counter
            from datetime import datetime

            def snap():
                return perf_counter(), datetime.now()
        """, rules=["D101"])
        assert len(findings) == 2

    def test_module_datetime_flagged(self):
        findings = findings_for("""
            import datetime

            def when():
                return datetime.datetime.utcnow()
        """, rules=["D101"])
        assert rule_ids_of(findings) == ["D101"]

    def test_sim_clock_clean(self):
        findings = findings_for("""
            def arrival(loop):
                return loop.now
        """, rules=["D101"])
        assert findings == []

    def test_obs_and_automation_exempt(self):
        source = """
            import time

            def wall():
                return time.perf_counter()
        """
        for path in ("src/repro/obs/snippet.py",
                     "src/repro/automation/snippet.py"):
            assert findings_for(source, path=path, rules=["D101"]) == []

    def test_tests_are_not_exempt(self):
        findings = findings_for("""
            import time

            def test_x():
                assert time.time() > 0
        """, path="tests/test_snippet.py", rules=["D101"])
        assert rule_ids_of(findings) == ["D101"]


# ---------------------------------------------------------------- D102

class TestGlobalRandom:
    def test_module_call_flagged(self):
        findings = findings_for("""
            import random

            def draw():
                return random.random() + random.choice([1, 2])
        """, rules=["D102"])
        assert len(findings) == 2

    def test_from_import_flagged(self):
        findings = findings_for("""
            from random import shuffle

            def mix(items):
                shuffle(items)
        """, rules=["D102"])
        assert rule_ids_of(findings) == ["D102"]

    def test_instance_method_clean(self):
        findings = findings_for("""
            def draw(rng):
                return rng.random() + rng.choice([1, 2])
        """, rules=["D102"])
        assert findings == []

    def test_util_rng_exempt(self):
        findings = findings_for("""
            import random

            def noise():
                return random.random()
        """, path="src/repro/util/rng.py", rules=["D102"])
        assert findings == []


# ---------------------------------------------------------------- D103

class TestStrayRandomInstance:
    def test_unseeded_flagged_everywhere(self):
        source = """
            import random

            RNG = random.Random()
        """
        for path in ("src/repro/service/snippet.py", "tests/test_snippet.py"):
            findings = findings_for(source, path=path, rules=["D103"])
            assert rule_ids_of(findings) == ["D103"], path

    def test_seeded_flagged_in_src_only(self):
        source = """
            import random

            RNG = random.Random(42)
        """
        assert rule_ids_of(
            findings_for(source, rules=["D103"])
        ) == ["D103"]
        assert findings_for(
            source, path="tests/test_snippet.py", rules=["D103"]
        ) == []

    def test_from_import_class_flagged(self):
        findings = findings_for("""
            from random import Random

            RNG = Random()
        """, rules=["D103"])
        assert rule_ids_of(findings) == ["D103"]

    def test_make_rng_clean(self):
        findings = findings_for("""
            from repro.util.rng import child_rng, make_rng

            def streams(seed):
                return make_rng(seed), child_rng(seed, "netsim")
        """, rules=["D103"])
        assert findings == []


# ---------------------------------------------------------------- D104

class TestSetIteration:
    def test_for_over_set_call_flagged(self):
        findings = findings_for("""
            def drain(items):
                for item in set(items):
                    yield item
        """, rules=["D104"])
        assert rule_ids_of(findings) == ["D104"]

    def test_comprehension_over_set_literal_flagged(self):
        findings = findings_for("""
            def ids():
                return [x for x in {"a", "b"}]
        """, rules=["D104"])
        assert rule_ids_of(findings) == ["D104"]

    def test_list_of_annotated_set_flagged(self):
        findings = findings_for("""
            from typing import Set

            def order(seen: Set[str]):
                return list(seen)
        """, rules=["D104"])
        assert rule_ids_of(findings) == ["D104"]

    def test_sorted_and_membership_clean(self):
        findings = findings_for("""
            from typing import Set

            def order(seen: Set[str], probe: str):
                hits = probe in seen
                return sorted(seen), len(seen), hits
        """, rules=["D104"])
        assert findings == []


# ---------------------------------------------------------------- D105

class TestHermeticPath:
    def test_environ_and_open_flagged_in_netsim(self):
        findings = findings_for("""
            import os

            def load(path):
                mode = os.environ["MODE"]
                tz = os.getenv("TZ")
                with open(path) as handle:
                    return handle.read(), mode, tz
        """, rules=["D105"])
        assert len(findings) == 3

    def test_experiments_may_do_io(self):
        findings = findings_for("""
            import os

            def load(path):
                with open(path) as handle:
                    return handle.read(), os.getenv("TZ")
        """, path="src/repro/experiments/snippet.py", rules=["D105"])
        assert findings == []


# ---------------------------------------------------------------- O201/O202

class TestObsPurity:
    def test_obs_importing_sim_flagged(self):
        findings = findings_for("""
            from repro.netsim.link import BottleneckLink
        """, path="src/repro/obs/snippet.py", rules=["O201"])
        assert rule_ids_of(findings) == ["O201"]

    def test_obs_importing_util_clean(self):
        findings = findings_for("""
            from repro.util.tables import render_table
            from repro.obs.metrics import Counter
        """, path="src/repro/obs/snippet.py", rules=["O201"])
        assert findings == []

    def test_obs_importing_rng_flagged_even_deferred(self):
        findings = findings_for("""
            def sneak():
                from repro.util.rng import make_rng
                return make_rng(0)
        """, path="src/repro/obs/snippet.py", rules=["O202"])
        assert rule_ids_of(findings) == ["O202"]

    def test_obs_importing_events_flagged(self):
        findings = findings_for("""
            from repro.netsim.events import EventLoop
        """, path="src/repro/obs/snippet.py", rules=["O202"])
        assert "O202" in rule_ids_of(findings)


# ---------------------------------------------------------------- O203

class TestInstrumentationGuard:
    def test_chained_active_flagged(self):
        findings = findings_for("""
            from repro import obs

            def record(value):
                obs.active().metrics.counter("x", "help").inc()
        """, rules=["O203"])
        assert rule_ids_of(findings) == ["O203"]

    def test_unguarded_handle_flagged(self):
        findings = findings_for("""
            from repro import obs

            def record(value):
                telemetry = obs.active()
                telemetry.metrics.counter("x", "help").inc(value)
        """, rules=["O203"])
        assert rule_ids_of(findings) == ["O203"]

    def test_guarded_handle_clean(self):
        findings = findings_for("""
            from repro import obs

            def record(value):
                telemetry = obs.active()
                if telemetry.enabled and telemetry.metrics_on:
                    telemetry.metrics.counter("x", "help").inc(value)
        """, rules=["O203"])
        assert findings == []

    def test_unguarded_causes_surface_flagged(self):
        findings = findings_for("""
            from repro import obs

            def record(delay):
                telemetry = obs.active()
                telemetry.causes.add("link.queue", delay)
        """, rules=["O203"])
        assert rule_ids_of(findings) == ["O203"]

    def test_causes_guarded_by_causes_on_clean(self):
        findings = findings_for("""
            from repro import obs

            def record(delay):
                telemetry = obs.active()
                if telemetry.enabled and telemetry.causes_on:
                    telemetry.causes.add("link.queue", delay)
        """, rules=["O203"])
        assert findings == []

    def test_health_guarded_by_health_on_clean(self):
        findings = findings_for("""
            from repro import obs

            def record(level):
                telemetry = obs.active()
                if telemetry.enabled and telemetry.health_on:
                    telemetry.health.check("player.buffer_nonnegative", level >= 0)
        """, rules=["O203"])
        assert findings == []


# ---------------------------------------------------------------- O204

class TestCauseTaxonomy:
    GUARDED = """
        from repro import obs

        def record(delay):
            telemetry = obs.active()
            if telemetry.enabled and telemetry.causes_on:
                telemetry.causes.add({tag}, delay)
    """

    def test_taxonomy_tag_clean(self):
        source = self.GUARDED.format(tag='"link.loss_recovery"')
        assert findings_for(source, rules=["O204"]) == []

    def test_off_taxonomy_tag_flagged(self):
        source = self.GUARDED.format(tag='"link.gremlins"')
        findings = findings_for(source, rules=["O204"])
        assert rule_ids_of(findings) == ["O204"]
        assert "link.gremlins" in findings[0].message

    def test_dynamic_tag_flagged(self):
        source = self.GUARDED.format(tag='f"link.{kind}"')
        findings = findings_for(source, rules=["O204"])
        assert rule_ids_of(findings) == ["O204"]

    def test_aliased_collector_checked(self):
        findings = findings_for("""
            from repro import obs

            def record(delay):
                telemetry = obs.active()
                if telemetry.enabled and telemetry.causes_on:
                    causes = telemetry.causes
                    causes.add("not.a.cause", delay)
        """, rules=["O204"])
        assert rule_ids_of(findings) == ["O204"]

    def test_outside_sim_packages_ignored(self):
        source = self.GUARDED.format(tag='"whatever.i.like"')
        findings = findings_for(
            source, path="src/repro/analysis/snippet.py", rules=["O204"]
        )
        assert findings == []

    def test_unrelated_add_calls_clean(self):
        findings = findings_for("""
            def collect(items):
                seen = set()
                for item in items:
                    seen.add(item)
                return seen
        """, rules=["O204"])
        assert findings == []


# ---------------------------------------------------------------- L301/L302

class TestLayering:
    def test_netsim_importing_service_rejected(self):
        # The acceptance-criterion case: a synthetic upward import.
        findings = lint_sources({
            "src/repro/netsim/bad.py":
                "from repro.service.api import ApiServer\n",
        }, only_rules=["L301"])
        assert rule_ids_of(findings) == ["L301"]
        assert "upward import" in findings[0].message

    def test_downward_import_clean(self):
        findings = lint_sources({
            "src/repro/service/fine.py":
                "from repro.netsim.events import EventLoop\n",
        }, only_rules=["L301"])
        assert findings == []

    def test_type_checking_import_exempt(self):
        findings = lint_sources({
            "src/repro/netsim/hints.py": textwrap.dedent("""
                from typing import TYPE_CHECKING

                if TYPE_CHECKING:
                    from repro.service.api import ApiServer
            """),
        }, only_rules=["L301"])
        assert findings == []

    def test_deferred_import_exempt(self):
        findings = lint_sources({
            "src/repro/netsim/lazy.py": textwrap.dedent("""
                def escape_hatch():
                    from repro.service.api import ApiServer
                    return ApiServer
            """),
        }, only_rules=["L301"])
        assert findings == []

    def test_cycle_detected(self):
        findings = lint_sources({
            "src/repro/media/alpha.py": "from repro.media.beta import B\n",
            "src/repro/media/beta.py": "from repro.media.alpha import A\n",
        }, only_rules=["L302"])
        assert rule_ids_of(findings) == ["L302"]
        assert len(findings) == 2  # one per cycle member

    def test_undeclared_package_flagged(self):
        findings = lint_sources({
            "src/repro/mystery/__init__.py": "X = 1\n",
        }, only_rules=["L303"])
        assert rule_ids_of(findings) == ["L303"]

    def test_world_may_import_service(self):
        # The mesoscale layer sits above the simulated backend…
        findings = lint_sources({
            "src/repro/world/snippet.py":
                "from repro.service.broadcast import Broadcast\n",
        }, only_rules=["L301"])
        assert findings == []

    def test_world_importing_core_rejected(self):
        # …but below study orchestration: full-fidelity expansion is
        # injected as a callable, never imported upward.
        findings = lint_sources({
            "src/repro/world/snippet.py":
                "from repro.core.session import SessionSetup\n",
        }, only_rules=["L301"])
        assert rule_ids_of(findings) == ["L301"]
        assert "upward import" in findings[0].message

    def test_world_is_declared(self):
        findings = lint_sources({
            "src/repro/world/__init__.py": "X = 1\n",
        }, only_rules=["L303"])
        assert findings == []


# ---------------------------------------------------------------- L304

class TestProcessPoolConfinement:
    def test_pool_import_outside_parallel_flagged(self):
        findings = lint_sources({
            "src/repro/core/sneaky.py":
                "from concurrent.futures import ProcessPoolExecutor\n",
        }, only_rules=["L304"])
        assert rule_ids_of(findings) == ["L304"]

    def test_multiprocessing_flagged_even_deferred(self):
        findings = lint_sources({
            "src/repro/service/snippet.py": textwrap.dedent("""
                def fan_out():
                    import multiprocessing.pool
                    return multiprocessing.pool.Pool()
            """),
        }, only_rules=["L304"])
        assert rule_ids_of(findings) == ["L304"]

    def test_declared_parallel_module_exempt(self):
        findings = lint_sources({
            "src/repro/core/parallel.py": textwrap.dedent("""
                import multiprocessing
                from concurrent.futures import ProcessPoolExecutor
            """),
        }, only_rules=["L304"])
        assert findings == []

    def test_world_shard_driver_exempt(self):
        findings = lint_sources({
            "src/repro/world/shards.py":
                "from concurrent.futures import ProcessPoolExecutor\n",
        }, only_rules=["L304"])
        assert findings == []

    def test_other_world_module_flagged(self):
        # Only the shard driver may fan out; the rest of the mesoscale
        # layer stays pool-free.
        findings = lint_sources({
            "src/repro/world/cohorts.py":
                "from concurrent.futures import ProcessPoolExecutor\n",
        }, only_rules=["L304"])
        assert rule_ids_of(findings) == ["L304"]

    def test_outside_repro_clean(self):
        findings = lint_sources({
            "tools/snippet.py":
                "from concurrent.futures import ProcessPoolExecutor\n",
        }, only_rules=["L304"])
        assert findings == []


# ---------------------------------------------------------------- F401/F402

class TestFloatDiscipline:
    def test_time_equality_flagged(self):
        findings = findings_for("""
            def underrun(now, deadline):
                return now == deadline
        """, rules=["F401"])
        assert rule_ids_of(findings) == ["F401"]

    def test_time_vs_fraction_flagged(self):
        findings = findings_for("""
            def check(queued_at):
                return queued_at != 0.5
        """, rules=["F401"])
        assert rule_ids_of(findings) == ["F401"]

    def test_sentinel_and_tolerance_clean(self):
        findings = findings_for("""
            def check(duration_s, now, deadline):
                if duration_s == 0:
                    return True
                return abs(now - deadline) < 1e-9
        """, rules=["F401"])
        assert findings == []

    def test_outside_sim_packages_clean(self):
        findings = findings_for("""
            def check(now, deadline):
                return now == deadline
        """, path="src/repro/analysis/snippet.py", rules=["F401"])
        assert findings == []

    def test_accumulated_schedule_at_flagged(self):
        findings = findings_for("""
            def emit(loop, step, fire):
                t = 0.0
                for _ in range(10):
                    t += step
                    loop.schedule_at(t, fire)
        """, rules=["F402"])
        assert rule_ids_of(findings) == ["F402"]

    def test_multiplied_times_clean(self):
        findings = findings_for("""
            def emit(loop, start, step, fire):
                for index in range(10):
                    loop.schedule_at(start + index * step, fire)
        """, rules=["F402"])
        assert findings == []

    def test_integer_counter_clean(self):
        findings = findings_for("""
            def emit(loop, fire):
                count = 0
                for _ in range(10):
                    count += 1
                    loop.schedule_at(10.0, fire)
        """, rules=["F402"])
        assert findings == []


# ---------------------------------------------------------------- F403

class TestBandwidthLimitEquality:
    def test_attribute_equality_flagged(self):
        findings = findings_for("""
            def by_limit(sessions, limit):
                return [s for s in sessions
                        if s.bandwidth_limit_mbps == limit]
        """, path="src/repro/core/snippet.py", rules=["F403"])
        assert rule_ids_of(findings) == ["F403"]

    def test_mbps_name_inequality_flagged(self):
        findings = findings_for("""
            def changed(old_mbps, new_mbps):
                return old_mbps != new_mbps
        """, path="src/repro/core/snippet.py", rules=["F403"])
        assert rule_ids_of(findings) == ["F403"]

    def test_isclose_clean(self):
        findings = findings_for("""
            import math

            def by_limit(sessions, limit):
                return [s for s in sessions
                        if math.isclose(s.bandwidth_limit_mbps, limit)]
        """, path="src/repro/core/snippet.py", rules=["F403"])
        assert findings == []

    def test_sentinel_literals_exempt(self):
        findings = findings_for("""
            def unshaped(nominal_mbps, limit_mbps):
                return nominal_mbps == 0.0 or limit_mbps == 100
        """, path="src/repro/core/snippet.py", rules=["F403"])
        assert findings == []

    def test_outside_sim_packages_clean(self):
        findings = findings_for("""
            def check(limit_mbps, other_mbps):
                return limit_mbps == other_mbps
        """, path="src/repro/analysis/snippet.py", rules=["F403"])
        assert findings == []


# ---------------------------------------------------------------- registry

def test_rule_catalogue_covers_every_family():
    from repro.lint import iter_rule_metadata, rule_ids

    ids = rule_ids()
    for family in "DOLF":
        assert any(rule_id.startswith(family) for rule_id in ids), family
    metadata = list(iter_rule_metadata())
    assert len(metadata) == len(ids)
    assert all(meta["description"] for meta in metadata)
