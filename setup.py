"""Shim for environments without the `wheel` package (offline legacy
editable installs via `pip install -e . --no-build-isolation`)."""

from setuptools import setup

setup()
