#!/usr/bin/env python3
"""The byte-fidelity capture pipeline, end to end.

Encodes a broadcast, packages it into *real* MPEG-TS segments, serves
one over the simulated network with packet capture on the tether,
reassembles the TCP stream from the capture (wireshark's "follow TCP
stream"), demuxes the TS bytes and inspects the elementary stream — the
exact toolchain of Section 2 (tcpdump -> wireshark -> libav).

Run:  python examples/video_quality_inspection.py
"""

import random

from repro.capture.inspector import inspect_frames
from repro.media.audio import AacEncoderModel
from repro.media.content import CONTENT_PROFILES, ContentProcess
from repro.media.encoder import EncoderSettings, VideoEncoder
from repro.media.segmenter import HlsSegmenter
from repro.netsim.connection import Connection, Message
from repro.netsim.events import EventLoop
from repro.netsim.topology import Network
from repro.netsim.trace import TraceCapture
from repro.protocols import mpegts
from repro.util.units import MBPS, format_bitrate


def main() -> None:
    print("1. encode 12 s of a sports broadcast (AVC model, 300 kbps target)")
    settings = EncoderSettings(target_bps=300_000.0)
    content = ContentProcess(CONTENT_PROFILES["sports_tv"], random.Random(1))
    video = VideoEncoder(settings, content, random.Random(2)).encode_all(12.0)
    audio = AacEncoderModel(random.Random(3), nominal_bps=64_000.0).encode_all(12.0)
    print(f"   {len(video)} video frames, {len(audio)} audio frames")

    print("2. package into MPEG-TS segments (PAT/PMT/PES, 188-byte packets)")
    segment = next(iter(HlsSegmenter().segment(video, audio)))
    ts_bytes = mpegts.mux_segment(segment.video_frames, segment.audio_frames)
    print(f"   segment of {segment.duration_s:.1f} s -> {len(ts_bytes)} TS bytes "
          f"({len(ts_bytes) // mpegts.TS_PACKET_SIZE} packets)")

    print("3. ship it over the simulated network with tcpdump on the tether")
    loop = EventLoop()
    net = Network(loop)
    cdn, desktop, phone = net.host("cdn"), net.host("desktop"), net.host("phone")
    net.duplex(cdn, desktop, rate_bps=100 * MBPS, delay_s=0.02)
    net.duplex(desktop, phone, rate_bps=50 * MBPS, delay_s=0.001)
    capture = TraceCapture(capture_payload=True)
    capture.tap_link(net.link_between(desktop, phone), "down")
    fwd, rev = net.duplex_paths("cdn", "desktop", "phone")
    conn = Connection(loop, fwd, rev, on_message=lambda m, t: None)
    conn.send(Message(payload=None, nbytes=len(ts_bytes), data=ts_bytes,
                      annotations={"protocol": "http", "path": "/seg0.ts"}))
    loop.run()
    print(f"   captured {len(capture)} packets, "
          f"{capture.total_bytes(direction='down')} wire bytes")

    print("4. reassemble the TCP stream from the capture")
    records = sorted(capture.data_records(), key=lambda r: r.seq)
    reassembled = b"".join(r.chunk for r in records if r.chunk is not None)
    assert reassembled == ts_bytes, "reassembly must be byte exact"
    print(f"   {len(reassembled)} bytes, byte-exact match")

    print("5. demux the transport stream and inspect the media")
    result = mpegts.demux_segment(reassembled)
    report = inspect_frames(result.video_frames, result.audio_frames)
    print(f"   PMT streams        : { {hex(k): hex(v) for k, v in result.pmt_streams.items()} }")
    print(f"   continuity errors  : {result.continuity_errors}")
    print(f"   video bitrate      : {format_bitrate(report.video_bitrate_bps)}")
    print(f"   audio bitrate      : {format_bitrate(report.audio_bitrate_bps)}")
    print(f"   average QP         : {report.average_qp:.1f}")
    print(f"   frame rate         : {report.average_fps:.1f} fps")
    print(f"   GOP pattern        : {report.gop_kind} "
          f"(I period ~{report.i_frame_period:.0f} frames)")
    print(f"   missing frames     : {report.has_missing_frames}")


if __name__ == "__main__":
    main()
