#!/usr/bin/env python3
"""Crawl the simulated service and analyze usage patterns (Section 4).

Performs a deep crawl (recursive quadtree zoom of the world map), picks
the most active areas, runs a four-identity targeted crawl over them,
and prints the Figure 1/2 statistics: discovery curves, duration and
viewer distributions, and the diurnal pattern.

Run:  python examples/crawl_usage_patterns.py
"""

from repro.analysis.charts import render_table
from repro.crawler.analysis import analyze_tracked
from repro.crawler.client import CrawlHarness
from repro.crawler.deep import DeepCrawler
from repro.crawler.targeted import TargetedCrawl


def main() -> None:
    print("setting up a world with ~900 concurrent broadcasts...")
    harness = CrawlHarness(seed=2016, mean_concurrent=900, identities=4)

    print("deep crawl (quadtree zoom, paced by the API rate limiter)...")
    deep = DeepCrawler(harness.clients[0])
    deep.start()
    harness.run_until(3600.0)
    result = deep.result
    print(f"  queried {len(result.areas)} areas in "
          f"{result.duration_s / 60:.1f} min, found "
          f"{len(result.discovered)} live broadcasts")
    relative = result.relative_curve()
    at_half = max(pct for areas, pct in relative if areas <= 50.0)
    print(f"  top 50% of areas hold {at_half:.0f}% of the broadcasts "
          f"(paper: >=80%)\n")

    print("targeted crawl: 64 most active areas split over 4 identities...")
    targeted = TargetedCrawl(harness.clients, result.top_areas(64),
                             duration_s=2400.0)
    targeted.start()
    harness.run_until(harness.loop.now + 2400.0 + 10.0)
    print(f"  tracked {len(targeted.tracked)} distinct broadcasts; "
          f"mean polling round {targeted.mean_round_s:.0f} s "
          f"(paper: ~50 s)\n")

    completed = targeted.completed_broadcasts()
    offsets = {
        b_id: harness.world.utc_offset_by_id[b_id]
        for b_id in targeted.tracked
        if b_id in harness.world.utc_offset_by_id
    }
    patterns = analyze_tracked(completed, utc_offsets=offsets)
    print("usage patterns (Fig. 2 / Section 4):")
    print(render_table(
        ["statistic", "value"],
        [[name, f"{value:.3f}"] for name, value in patterns.summary_rows()],
    ))
    print()
    print("avg viewers per broadcast by local start hour (Fig. 2b):")
    print(render_table(
        ["local hour", "avg viewers"],
        [[h, f"{v:.1f}"] for h, v in sorted(patterns.viewers_by_local_hour.items())],
    ))


if __name__ == "__main__":
    main()
