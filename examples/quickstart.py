#!/usr/bin/env python3
"""Quickstart: watch one simulated Periscope broadcast and read its QoE.

Builds a popular broadcast, joins it over each delivery protocol for 60
simulated seconds (chat pane on, as in the app), and prints the metrics
the paper's Section 5 defines: join time, stall events, playback latency
and the NTP-derived delivery latency.

Run:  python examples/quickstart.py
"""

import random

from repro.automation.devices import GALAXY_S4
from repro.core.session import SessionSetup, ViewingSession
from repro.service.broadcast import sample_broadcast
from repro.service.geo import POPULATION_CENTERS, GeoPoint
from repro.service.selection import DeliveryProtocol
from repro.util.units import format_bitrate, format_duration


def watch(protocol: DeliveryProtocol, viewers: float) -> None:
    # A broadcaster in Istanbul (Periscope's biggest 2016 market), one
    # hour into a long broadcast.
    broadcast = sample_broadcast(
        random.Random(7), start_time=0.0,
        location=GeoPoint(41.0, 28.9), center=POPULATION_CENTERS[17],
    )
    broadcast.mean_viewers = viewers
    broadcast.duration_s = 2 * 3600.0

    setup = SessionSetup(
        broadcast=broadcast,
        age_at_join=3600.0,
        protocol=protocol,
        device=GALAXY_S4,
        bandwidth_limit_mbps=100.0,   # unshaped, like the paper's default
        watch_seconds=60.0,
        chat_ui_on=True,
        seed=42,
    )
    artifacts = ViewingSession(setup).run()
    qoe = artifacts.qoe

    print(f"=== {protocol.value.upper()} session "
          f"({qoe.avg_viewers:.0f} concurrent viewers) ===")
    print(f"  join time          : {format_duration(qoe.join_time_s)}")
    print(f"  playback           : {format_duration(qoe.playback_s)}")
    print(f"  stalls             : {qoe.stall_count} "
          f"({format_duration(qoe.total_stall_s)} total)")
    print(f"  playback latency   : {format_duration(qoe.playback_latency_s or 0)}")
    if qoe.delivery_latency_s is not None:
        print(f"  delivery latency   : {format_duration(qoe.delivery_latency_s)} "
              f"(mean of {len(qoe.delivery_latency_samples)} NTP samples)")
    print(f"  video bitrate      : {format_bitrate(qoe.video_bitrate_bps or 0)}")
    print(f"  average QP         : {qoe.avg_qp:.1f}")
    print(f"  displayed fps      : {qoe.avg_fps:.1f}")
    print(f"  chat messages      : {artifacts.chat_messages} "
          f"({artifacts.avatar_requests} avatar downloads, "
          f"{artifacts.avatar_bytes / 1e6:.1f} MB)")
    print(f"  total downstream   : {artifacts.total_down_bytes / 1e6:.1f} MB")
    print()


def main() -> None:
    # A quiet broadcast is served over RTMP (pushed, sub-second delivery);
    # a popular one over HLS from the CDN (segmented, seconds of latency).
    watch(DeliveryProtocol.RTMP, viewers=25.0)
    watch(DeliveryProtocol.HLS, viewers=800.0)


if __name__ == "__main__":
    main()
