#!/usr/bin/env python3
"""The tc bandwidth sweep: stalls and join time vs access bandwidth.

Reproduces the paper's Figures 3(b) and 4 at a small scale: automated
60-second Teleport sessions through a shaped tether, a handful per
limit, then textual boxplots.  The 2 Mbps QoE boundary — caused by the
chat pane's avatar traffic competing with the ~300 kbps video — shows up
directly.

Run:  python examples/qoe_bandwidth_sweep.py
"""

from repro.analysis.charts import render_boxplot_rows
from repro.core.config import StudyConfig
from repro.core.study import AutomatedViewingStudy
from repro.util.empirical import five_number_summary


def main() -> None:
    study = AutomatedViewingStudy(StudyConfig(seed=2016))
    limits = (0.5, 1.0, 2.0, 4.0, 100.0)
    print(f"running {6 * len(limits)} sessions across limits {limits} Mbps...\n")
    sweep = study.run_bandwidth_sweep(sessions_per_limit=6, limits_mbps=limits)

    stall_groups, join_groups = {}, {}
    for limit, dataset in sorted(sweep.items()):
        rtmp = dataset.by_protocol("rtmp")
        if not rtmp:
            continue
        label = "unlimited" if limit >= 100 else f"{limit:g} Mbps"
        stall_groups[label] = five_number_summary([s.stall_ratio for s in rtmp])
        join_groups[label] = five_number_summary([s.join_time_s for s in rtmp])

    print("stall ratio vs bandwidth limit (RTMP sessions, Fig. 3b):")
    print(render_boxplot_rows(stall_groups, "stall ratio"))
    print()
    print("join time vs bandwidth limit (RTMP sessions, Fig. 4a):")
    print(render_boxplot_rows(join_groups, "join time (s)"))
    print()
    print("Reading: below 2 Mbps the avatar traffic of the default-on chat")
    print("pane starves the video flow; above it, sessions play clean aside")
    print("from occasional broadcaster-uplink glitches.")


if __name__ == "__main__":
    main()
