#!/usr/bin/env python3
"""Power profiling with the simulated Monsoon monitor (Section 5.3).

Measures every Figure 7 app state over WiFi and LTE, prints the bars
next to the paper's values, and demonstrates the chat-energy mitigation
the paper proposes (avatar caching) through the component model.

Run:  python examples/energy_profile.py
"""

import random

from repro.analysis.charts import render_table
from repro.energy.components import GALAXY_S4_MODEL, Radio
from repro.energy.monsoon import MonsoonMonitor
from repro.energy.states import (
    APP_STATES,
    PAPER_FIGURE7_MW,
    AppState,
    state_power_mw,
)


def main() -> None:
    monitor = MonsoonMonitor(random.Random(2016))

    rows = []
    for state in AppState:
        wifi = monitor.measure_average(state, Radio.WIFI, duration_s=20.0)
        lte = monitor.measure_average(state, Radio.LTE, duration_s=20.0)
        paper_wifi, paper_lte = PAPER_FIGURE7_MW[state]
        rows.append([state.value, f"{wifi:.0f}", f"{paper_wifi:.0f}",
                     f"{lte:.0f}", f"{paper_lte:.0f}"])
    print("Figure 7: average power per app state (mW)")
    print(render_table(
        ["state", "wifi (sim)", "wifi (paper)", "lte (sim)", "lte (paper)"],
        rows,
    ))

    print()
    print("Why chat costs so much (component breakdown, HLS over LTE):")
    off = APP_STATES[AppState.VIDEO_HLS_CHAT_OFF]
    on = APP_STATES[AppState.VIDEO_HLS_CHAT_ON]
    model = GALAXY_S4_MODEL
    breakdown = [
        ["CPU (DVFS, +1/3 clocks)", f"{model.cpu_mw(off.cpu_clock):.0f}",
         f"{model.cpu_mw(on.cpu_clock):.0f}"],
        ["GPU (DVFS, +1/3 clocks)", f"{model.gpu_mw(off.gpu_clock):.0f}",
         f"{model.gpu_mw(on.gpu_clock):.0f}"],
        ["LTE radio (0.5 -> 3.5 Mbps)",
         f"{model.radio_mw(Radio.LTE, off.throughput_mbps, off.radio_duty):.0f}",
         f"{model.radio_mw(Radio.LTE, on.throughput_mbps, on.radio_duty):.0f}"],
    ]
    print(render_table(["component", "chat off (mW)", "chat on (mW)"], breakdown))

    print()
    saved_radio = model.radio_mw(Radio.LTE, 3.5, 1.0) - model.radio_mw(Radio.LTE, 0.8, 1.0)
    print("Mitigation: caching profile pictures removes most of the avatar")
    print(f"traffic — roughly {saved_radio:.0f} mW of LTE radio power alone, plus")
    print("the CPU/GPU load of decoding the same JPEGs over and over.")


if __name__ == "__main__":
    main()
